/**
 * @file
 * Canonical segment construction (paper §2.2, §3.2).
 *
 * The builder turns logical word arrays into canonical DAGs by applying
 * three deterministic rules bottom-up:
 *   1. zero suppression  — an all-zero subtree is the zero entry;
 *   2. data compaction   — an all-raw subtree covering <= 8 words whose
 *      values fit the packing width is inlined into one word;
 *   3. path compaction   — an interior node with exactly one non-zero
 *      slot is elided, its child index packed into the entry.
 * Because the rules depend only on content, equal content always
 * produces an identical root entry — the segment-level extension of
 * line content-uniqueness that makes whole-segment compare a single
 * root comparison.
 *
 * Reference-count contract: makeLeaf/makeNode/build CONSUME ownership
 * of the references held by non-zero PLID words/entries passed in, and
 * the returned entry OWNS one fresh reference (when it is a PLID).
 */

#ifndef HICAMP_SEG_BUILDER_HH
#define HICAMP_SEG_BUILDER_HH

#include <cstdint>
#include <vector>

#include "common/ownership.hh"
#include "mem/memory.hh"
#include "obs/trace.hh"
#include "seg/entry.hh"
#include "seg/reader.hh"

namespace hicamp {

/** Which canonicalization rules the builder applies (ablation knobs).
 * Disabling a rule changes the canonical form consistently — content-
 * uniqueness still holds as long as every builder touching a store
 * uses the same policy. */
struct CompactionPolicy {
    bool dataCompaction = true;
    bool pathCompaction = true;
};

class SegBuilder
{
  public:
    /**
     * @param model_staging when true, bulk builds model the iterator-
     * register write path: each created leaf is staged through a
     * transient line before its lookup-by-content (paper §3.3).
     */
    explicit SegBuilder(Memory &mem, bool model_staging = false,
                        CompactionPolicy policy = {})
        : mem_(mem), geo_(mem.fanout()), reader_(mem),
          modelStaging_(model_staging), policy_(policy)
    {}

    const SegGeometry &geometry() const { return geo_; }

    /**
     * Canonical leaf entry over F words. Zero words are normalized to
     * Raw tags. Consumes refs of PLID words; returned entry owns one.
     */
    HICAMP_RETURNS_REF Entry makeLeaf(HICAMP_CONSUMES_REF const Word *words,
                                      const WordMeta *metas);

    /**
     * Canonical interior entry over F child entries at height
     * @p child_height. Consumes child refs; returned entry owns one.
     */
    HICAMP_RETURNS_REF Entry makeNode(
        HICAMP_CONSUMES_REF const Entry *children, int child_height);

    /**
     * Canonical subtree of height @p h over @p n words (zero-padded to
     * coverage). Consumes refs of PLID words.
     */
    HICAMP_RETURNS_REF Entry build(HICAMP_CONSUMES_REF const Word *words,
                                   const WordMeta *metas, std::uint64_t n,
                                   int h);

    /** Minimal-height segment over raw bytes. */
    HICAMP_RETURNS_REF SegDesc buildBytes(const void *data,
                                          std::uint64_t len);

    /** Minimal-height segment over tagged words. */
    HICAMP_RETURNS_REF SegDesc
    buildWords(HICAMP_CONSUMES_REF const Word *words,
               const WordMeta *metas, std::uint64_t n);

    /**
     * Functional single-word update: new canonical root with word
     * @p idx replaced. Borrows @p root; consumes the ref of (w, m) if
     * it is a PLID; the returned entry owns a fresh ref.
     */
    HICAMP_RETURNS_REF Entry
    setWord(HICAMP_BORROWS_REF const Entry &root, int h, std::uint64_t idx,
            HICAMP_CONSUMES_REF Word w, WordMeta m,
            DramCat cat = DramCat::Read);

    /** Add one owned reference to an entry (no-op for non-PLID). The
     *  result is a convenience copy of @p e carrying the new
     *  reference; discarding it leaves the reference with @p e. */
    HICAMP_ACQUIRES_REF Entry
    retain(HICAMP_BORROWS_REF const Entry &e)
    {
        if (e.meta.isPlid() && e.word != 0) {
            mem_.incRef(e.word);
            HICAMP_TRACE_EVENT(Seg, Retain, e.word, 0);
        }
        return e;
    }

    /**
     * Release one owned reference (no-op for non-PLID). Excluded from
     * rank-2 (vsm) callers — releasing may cascade into reclamation
     * and the segment map's line-freed hook (DESIGN.md §7).
     */
    HICAMP_RELEASES_REF void
    release(const Entry &e) HICAMP_EXCLUDES(lockrank::vsm)
    {
        if (e.meta.isPlid() && e.word != 0) {
            HICAMP_TRACE_EVENT(Seg, Release, e.word, 0);
            mem_.decRef(e.word);
        }
    }

    /** Release a whole segment descriptor's root reference. */
    HICAMP_RELEASES_REF void
    releaseSeg(const SegDesc &d) HICAMP_EXCLUDES(lockrank::vsm)
    {
        release(d.root);
    }

    /**
     * Release the references owned by the PLID words of a tagged
     * span: the rollback of a consuming call that never ran (e.g.
     * the un-built tail of a failed bulk build).
     */
    HICAMP_RELEASES_REF void
    releaseWords(HICAMP_CONSUMES_REF const Word *words,
                 const WordMeta *metas, std::uint64_t n)
        HICAMP_EXCLUDES(lockrank::vsm)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            if (metas[i].isPlid() && words[i] != 0)
                mem_.decRef(words[i]);
        }
    }

  private:
    /** Try packing @p n raw values at the inline width for coverage n. */
    bool tryInline(const Word *values, std::uint64_t n, Entry *out) const;

    /** Gather the raw values of a zero/inline entry subtree. */
    void unpackRaw(const Entry &e, std::uint64_t n_words,
                   Word *out) const;

    Memory &mem_;
    SegGeometry geo_;
    SegReader reader_;
    bool modelStaging_;
    CompactionPolicy policy_;
};

} // namespace hicamp

#endif // HICAMP_SEG_BUILDER_HH
