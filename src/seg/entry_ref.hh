/**
 * @file
 * RAII ownership handles for segment entries (DESIGN.md §10).
 *
 * EntryRef is the Entry-level sibling of PlidRef (mem/plid_ref.hh): a
 * move-only handle owning one reference of a PLID entry (non-PLID
 * entries carry no reference, so owning one is free). OwnedEntries is
 * the rollback guard the builder call sites need: makeNode consumes a
 * whole child array — on every path, including failure — so the guard
 * owns partially-built children only until `disown()` hands the array
 * over. Both exist to replace the hand-written `for (j < i)
 * release(...)` catch blocks in builder/merge/iterator with scoped
 * ownership the static checker does not have to reason about.
 */

#ifndef HICAMP_SEG_ENTRY_REF_HH
#define HICAMP_SEG_ENTRY_REF_HH

#include <utility>

#include "common/ownership.hh"
#include "seg/builder.hh"
#include "seg/entry.hh"

namespace hicamp {

/** Move-only owner of one reference of an Entry (via a SegBuilder). */
class EntryRef
{
  public:
    /** Empty handle: owns the zero entry, i.e. nothing. */
    EntryRef() = default;

    ~EntryRef() { reset(); }

    EntryRef(EntryRef &&o) noexcept
        : b_(std::exchange(o.b_, nullptr)), e_(std::exchange(o.e_, Entry{}))
    {
    }

    EntryRef &
    operator=(EntryRef &&o) noexcept
    {
        if (this != &o) {
            reset();
            b_ = std::exchange(o.b_, nullptr);
            e_ = std::exchange(o.e_, Entry{});
        }
        return *this;
    }

    EntryRef(const EntryRef &) = delete;
    EntryRef &operator=(const EntryRef &) = delete;

    /** Take over the reference owned by @p e (e.g. a makeNode result). */
    static EntryRef
    adopt(SegBuilder &b, HICAMP_CONSUMES_REF Entry e)
    {
        return EntryRef(&b, e);
    }

    /** Own a fresh reference of @p e; the caller keeps its own. */
    static EntryRef
    retain(SegBuilder &b, HICAMP_BORROWS_REF const Entry &e)
    {
        return EntryRef(&b, b.retain(e));
    }

    /** The held entry; ownership stays with the handle. */
    const Entry &entry() const { return e_; }

    /** True when the handle owns a reference (entry is a PLID). */
    explicit operator bool() const
    {
        return b_ != nullptr && e_.isPlid();
    }

    /** Give up ownership; the handle is empty afterwards. */
    HICAMP_RETURNS_REF Entry
    release()
    {
        b_ = nullptr;
        return std::exchange(e_, Entry{});
    }

    /** Release the owned reference now (no-op when empty). */
    void
    reset()
    {
        SegBuilder *b = std::exchange(b_, nullptr);
        Entry e = std::exchange(e_, Entry{});
        if (b != nullptr)
            b->release(e);
    }

  private:
    EntryRef(SegBuilder *b, Entry e) : b_(b), e_(e) {}

    SegBuilder *b_ = nullptr;
    Entry e_;
};

/**
 * Scoped owner of up to one line's worth of child entries being
 * assembled for makeNode/makeLeaf. Push owned entries as they are
 * produced; `disown()` transfers the whole array to a consuming callee
 * (makeNode consumes even when it throws, so disown *before* the
 * call). If the scope unwinds first, the destructor releases whatever
 * was pushed — the rollback the manual catch blocks used to spell out.
 */
class OwnedEntries
{
  public:
    explicit OwnedEntries(SegBuilder &b) : b_(b) {}

    ~OwnedEntries()
    {
        for (unsigned i = 0; i < n_; ++i)
            b_.release(items_[i]);
    }

    OwnedEntries(const OwnedEntries &) = delete;
    OwnedEntries &operator=(const OwnedEntries &) = delete;

    /** Append the next child slot, taking over its reference. */
    void
    push(HICAMP_CONSUMES_REF Entry e)
    {
        HICAMP_ASSERT(n_ < kMaxLineWords, "line slot overflow");
        items_[n_++] = e;
    }

    unsigned size() const { return n_; }

    const Entry &operator[](unsigned i) const { return items_[i]; }

    /**
     * Transfer ownership of all pushed entries to the caller and return
     * the slot array (zero-padded). Call directly at a consuming call
     * site: `b.makeNode(kids.disown(), h)`.
     */
    HICAMP_RETURNS_REF const Entry *
    disown()
    {
        n_ = 0;
        return items_;
    }

  private:
    SegBuilder &b_;
    Entry items_[kMaxLineWords] = {};
    unsigned n_ = 0;
};

} // namespace hicamp

#endif // HICAMP_SEG_ENTRY_REF_HH
