/**
 * @file
 * Merge-update (paper §3.4): three-way structural merge of segment
 * DAGs, used by mCAS to resolve write-write conflicts on high-
 * contention structures (maps, queues, counters) without application
 * retry.
 *
 * Per line offset the rule is: a raw word merges by applying the
 * difference (cur + (new - old)); a reference word requires one side
 * to be unchanged — two threads may not both store into the same
 * slot, even the same value, because a matching store can be a
 * consume (e.g. two pops claiming one queue slot) that must not
 * collapse. Content-unique sub-DAGs let whole subtrees be taken
 * wholesale whenever one side is unchanged, skipping the line-by-line
 * work.
 */

#ifndef HICAMP_SEG_MERGE_HH
#define HICAMP_SEG_MERGE_HH

#include <optional>

#include "seg/builder.hh"
#include "seg/reader.hh"

namespace hicamp {

/** Statistics of one merge-update execution. */
struct MergeStats {
    std::uint64_t nodesVisited = 0;   ///< DAG levels actually descended
    std::uint64_t subtreesSkipped = 0; ///< resolved by root comparison
    std::uint64_t wordMerges = 0;     ///< raw-difference word merges
};

/**
 * Three-way DAG merge.
 *
 * Borrows @p old_e, @p cur_e and @p new_e (caller keeps its
 * references). On success returns a merged entry owning a fresh
 * reference; on a true conflict (two sides stored distinct references
 * into the same slot) returns nullopt.
 */
std::optional<Entry> mergeUpdate(Memory &mem, const Entry &old_e,
                                 const Entry &cur_e, const Entry &new_e,
                                 int height, MergeStats *stats = nullptr);

} // namespace hicamp

#endif // HICAMP_SEG_MERGE_HH
