#include "common/fault.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

// The host environment vector, walked to reject unknown
// HICAMP_FAULT_* keys (a typo like HICAMP_FAULT_ALOC_P must not
// silently disable the injection it was meant to configure).
extern char **environ; // NOLINT(readability-redundant-declaration)

namespace hicamp {

namespace {

[[noreturn]] void
reject(const char *name, const char *value, const char *why)
{
    throw FaultConfigError(std::string(name) + "='" + value + "': " +
                           why);
}

/** Strict [0, 1] probability: full-string numeric, finite, in range. */
double
parseProb(const char *name, const char *s)
{
    if (*s == '\0')
        reject(name, s, "empty probability");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        reject(name, s, "not a number");
    if (errno == ERANGE || !std::isfinite(v))
        reject(name, s, "probability out of range");
    if (v < 0.0 || v > 1.0)
        reject(name, s, "probability must be in [0, 1]");
    return v;
}

/**
 * Strict non-negative count. strtoull accepts a leading '-' and wraps
 * it around, so negatives are rejected up front.
 */
std::uint64_t
parseCount(const char *name, const char *s)
{
    const char *p = s;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '\0')
        reject(name, s, "empty count");
    if (*p == '-')
        reject(name, s, "count must be non-negative");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(p, &end, 0);
    if (end == p || *end != '\0')
        reject(name, s, "not a number");
    if (errno == ERANGE)
        reject(name, s, "count out of range");
    return v;
}

constexpr const char *kKnownKeys[] = {
    "HICAMP_FAULT_SEED",   "HICAMP_FAULT_ALLOC_P",
    "HICAMP_FAULT_ALLOC_EVERY", "HICAMP_FAULT_FLIP_P",
    "HICAMP_FAULT_FLIP_EVERY",  "HICAMP_FAULT_SATURATE_EVERY",
};

/** Reject HICAMP_FAULT_* variables the overlay would not consume. */
void
rejectUnknownKeys()
{
    constexpr const char *kPrefix = "HICAMP_FAULT_";
    const std::size_t prefix_len = std::strlen(kPrefix);
    for (char **e = environ; e != nullptr && *e != nullptr; ++e) {
        const char *entry = *e;
        if (std::strncmp(entry, kPrefix, prefix_len) != 0)
            continue;
        const char *eq = std::strchr(entry, '=');
        const std::string key(entry,
                              eq ? static_cast<std::size_t>(eq - entry)
                                 : std::strlen(entry));
        bool known = false;
        for (const char *k : kKnownKeys)
            known = known || key == k;
        if (!known) {
            throw FaultConfigError(
                key + ": unknown HICAMP_FAULT_ variable (known keys: "
                      "SEED, ALLOC_P, ALLOC_EVERY, FLIP_P, FLIP_EVERY, "
                      "SATURATE_EVERY)");
        }
    }
}

} // namespace

FaultConfig
FaultConfig::fromEnv(FaultConfig base)
{
    // NOLINTBEGIN(concurrency-mt-unsafe): getenv runs at
    // configuration time, before worker threads exist, and
    // nothing in this process calls setenv.
    rejectUnknownKeys();
    if (const char *s = std::getenv("HICAMP_FAULT_SEED"))
        base.seed = parseCount("HICAMP_FAULT_SEED", s);
    if (const char *s = std::getenv("HICAMP_FAULT_ALLOC_P"))
        base.allocFailP = parseProb("HICAMP_FAULT_ALLOC_P", s);
    if (const char *s = std::getenv("HICAMP_FAULT_ALLOC_EVERY"))
        base.allocFailEvery = parseCount("HICAMP_FAULT_ALLOC_EVERY", s);
    if (const char *s = std::getenv("HICAMP_FAULT_FLIP_P"))
        base.bitFlipP = parseProb("HICAMP_FAULT_FLIP_P", s);
    if (const char *s = std::getenv("HICAMP_FAULT_FLIP_EVERY"))
        base.bitFlipEvery = parseCount("HICAMP_FAULT_FLIP_EVERY", s);
    if (const char *s = std::getenv("HICAMP_FAULT_SATURATE_EVERY"))
        base.saturateEvery = parseCount("HICAMP_FAULT_SATURATE_EVERY", s);
    // NOLINTEND(concurrency-mt-unsafe)
    return base;
}

} // namespace hicamp
