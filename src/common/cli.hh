/**
 * @file
 * Shared command-line flag parser for the example drivers, tools and
 * benches.
 *
 * Every driver used to hand-roll the same `want()` strcmp chain, and
 * the copies drifted: some rejected unknown flags, the benches
 * silently ignored them — a typo like `--fault-allocp` ran an
 * un-faulted experiment with no warning, and `--smokee` ran the full
 * sweep instead of the smoke one. FlagSet centralizes the contract:
 * an unrecognized flag or a malformed value prints the usage table to
 * stderr and exits 2 (the bench/CI convention for usage errors), and
 * `--help` prints it to stdout and exits 0.
 *
 * Flags bind directly to variables (`u64`, `f64`, `prob`, `str`,
 * `toggle`) or to a callback (`onValue`); `addFaultFlags` wires the
 * five `--fault-*` knobs of the deterministic injector identically
 * everywhere.
 */

#ifndef HICAMP_COMMON_CLI_HH
#define HICAMP_COMMON_CLI_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.hh"

namespace hicamp::cli {

class FlagSet
{
  public:
    FlagSet(std::string prog, std::string about)
        : prog_(std::move(prog)), about_(std::move(about))
    {
    }

    /** Value flag bound through a callback; @p value_name is the
     *  usage-table placeholder (e.g. "N", "P", "PATH"). */
    void
    onValue(const char *name, const char *value_name, const char *help,
            std::function<void(const char *)> sink)
    {
        flags_.push_back(
            {name, value_name, help, std::move(sink), nullptr});
    }

    /** Valueless switch flag. */
    void
    onSwitch(const char *name, const char *help,
             std::function<void()> sink)
    {
        flags_.push_back({name, nullptr, help, nullptr, std::move(sink)});
    }

    void
    u64(const char *name, std::uint64_t *out, const char *help)
    {
        onValue(name, "N", help, [this, name, out](const char *s) {
            *out = parseU64(name, s);
        });
    }

    void
    u32(const char *name, unsigned *out, const char *help)
    {
        onValue(name, "N", help, [this, name, out](const char *s) {
            *out = static_cast<unsigned>(parseU64(name, s));
        });
    }

    void
    f64(const char *name, double *out, const char *help)
    {
        onValue(name, "X", help, [this, name, out](const char *s) {
            *out = parseF64(name, s);
        });
    }

    /** Double constrained to [0, 1] (injection probabilities). */
    void
    prob(const char *name, double *out, const char *help)
    {
        onValue(name, "P", help, [this, name, out](const char *s) {
            double v = parseF64(name, s);
            if (v < 0.0 || v > 1.0)
                fail(name, s, "probability outside [0, 1]");
            *out = v;
        });
    }

    void
    str(const char *name, std::string *out, const char *help)
    {
        onValue(name, "S", help,
                [out](const char *s) { *out = s; });
    }

    /** Switch that sets @p out to true. */
    void
    toggle(const char *name, bool *out, const char *help)
    {
        onSwitch(name, help, [out] { *out = true; });
    }

    /**
     * Parse the whole command line. Unknown flags, missing values and
     * malformed values print the usage table to stderr and exit 2;
     * `--help`/`-h` prints it to stdout and exits 0.
     */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--help") == 0 ||
                std::strcmp(arg, "-h") == 0) {
                usage(stdout);
                std::exit(0);
            }
            const Flag *f = find(arg);
            if (f == nullptr) {
                std::fprintf(stderr, "%s: unknown flag %s\n",
                             prog_.c_str(), arg);
                usage(stderr);
                std::exit(2);
            }
            if (f->onSwitch) {
                f->onSwitch();
                continue;
            }
            if (++i >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             prog_.c_str(), arg);
                usage(stderr);
                std::exit(2);
            }
            f->onValue(argv[i]);
        }
    }

    void
    usage(std::FILE *out) const
    {
        std::fprintf(out, "usage: %s [flags]\n  %s\n", prog_.c_str(),
                     about_.c_str());
        for (const auto &f : flags_) {
            std::string head = "  " + f.name;
            if (f.valueName != nullptr)
                head += std::string(" <") + f.valueName + ">";
            std::fprintf(out, "%-28s %s\n", head.c_str(), f.help.c_str());
        }
    }

  private:
    struct Flag {
        std::string name;
        const char *valueName; ///< nullptr for switches
        std::string help;
        std::function<void(const char *)> onValue;
        std::function<void()> onSwitch;
    };

    const Flag *
    find(const char *name) const
    {
        for (const auto &f : flags_)
            if (f.name == name)
                return &f;
        return nullptr;
    }

    [[noreturn]] void
    fail(const char *flag, const char *value, const char *why)
    {
        std::fprintf(stderr, "%s: bad value '%s' for %s (%s)\n",
                     prog_.c_str(), value, flag, why);
        usage(stderr);
        std::exit(2);
    }

    std::uint64_t
    parseU64(const char *flag, const char *s)
    {
        char *end = nullptr;
        std::uint64_t v = std::strtoull(s, &end, 0);
        if (end == s || *end != '\0')
            fail(flag, s, "expected an unsigned integer");
        return v;
    }

    double
    parseF64(const char *flag, const char *s)
    {
        char *end = nullptr;
        double v = std::strtod(s, &end);
        if (end == s || *end != '\0')
            fail(flag, s, "expected a number");
        return v;
    }

    std::string prog_;
    std::string about_;
    std::vector<Flag> flags_;
};

/** The deterministic fault injector's standard flag block, identical
 *  across every driver that exposes injection. */
inline void
addFaultFlags(FlagSet &fs, FaultConfig &fc)
{
    fs.u64("--fault-seed", &fc.seed, "fault-injector RNG seed");
    fs.prob("--fault-alloc-p", &fc.allocFailP,
            "per-allocation failure probability");
    fs.u64("--fault-alloc-every", &fc.allocFailEvery,
           "fail every Nth allocation (0 = off)");
    fs.prob("--fault-flip-p", &fc.bitFlipP,
            "per-read DRAM bit-flip probability");
    fs.u64("--fault-flip-every", &fc.bitFlipEvery,
           "flip a bit every Nth read (0 = off)");
}

} // namespace hicamp::cli

#endif // HICAMP_COMMON_CLI_HH
