/**
 * @file
 * Fundamental HICAMP model types: machine words, hardware word tags,
 * physical line IDs (PLIDs) and virtual segment IDs (VSIDs).
 *
 * The HICAMP paper (ASPLOS'12) models memory as an array of small
 * fixed-size lines whose words carry hardware tags (stored in spare ECC
 * bits) distinguishing raw data from protected references. This header
 * defines the software model of those quantities.
 */

#ifndef HICAMP_COMMON_TYPES_HH
#define HICAMP_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace hicamp {

/** One 64-bit machine word; the unit of tagging and of line content. */
using Word = std::uint64_t;

/**
 * Physical Line ID. Addresses one content-unique line in the
 * deduplicated store. PLID 0 is the distinguished zero line: it stands
 * for an all-zero line and, in a DAG slot, for an all-zero subtree of
 * any height. PLIDs are a protected type: software can only obtain one
 * from a lookup-by-content operation or by copying an existing PLID.
 */
using Plid = std::uint64_t;

/** Virtual Segment ID; index into a virtual segment map. 0 == null. */
using Vsid = std::uint64_t;

/** The distinguished zero line / zero subtree. */
inline constexpr Plid kZeroPlid = 0;

/** Null segment reference. */
inline constexpr Vsid kNullVsid = 0;

/** Bytes per machine word. */
inline constexpr std::size_t kWordBytes = 8;

/** Largest supported line size (64 bytes == 8 words). */
inline constexpr std::size_t kMaxLineWords = 8;

/**
 * Kind of content held by a tagged word. The hardware stores this in
 * spare ECC bits alongside the word; we model it as a 16-bit out-of-band
 * meta value per word (see WordMeta). Tags participate in content
 * identity: two lines are equal only if words *and* tags match.
 */
enum class TagKind : std::uint8_t {
    Raw = 0,     ///< plain data word
    Plid = 1,    ///< protected reference to a line / subtree root
    Vsid = 2,    ///< protected reference to a segment-map entry
    Inline = 3,  ///< data-compacted word: packs a small all-raw subtree
};

/**
 * Per-word hardware tag, packed into 16 bits.
 *
 * Layout (bit 0 = LSB):
 *  - bits [1:0]  TagKind
 *  - TagKind::Plid
 *      bits [5:2]   skip  — path-compaction level-skip count (0..15)
 *      bits [15:6]  path  — skipped child indices, log2(fanout) bits
 *                   each, the index for the topmost skipped level in
 *                   the lowest bits (read first on descent)
 *  - TagKind::Inline
 *      bits [3:2]   widthCode — packed element width: 0 -> 8-bit,
 *                   1 -> 16-bit, 2 -> 32-bit
 *      bits [7:4]   skip  — path compaction over the inline word
 *      bits [15:8]  path  — as above, 8 bits
 *
 * Path compaction (paper §3.2) encodes, in otherwise unused reference
 * bits, the chain of single-non-zero-child interior nodes that would
 * sit between this slot and the referenced node. Data compaction packs
 * an entire all-raw subtree whose values are small into one word.
 */
class WordMeta
{
  public:
    constexpr WordMeta() : bits_(0) {}
    constexpr explicit WordMeta(std::uint16_t raw) : bits_(raw) {}

    static constexpr WordMeta
    raw()
    {
        return WordMeta(0);
    }

    static constexpr WordMeta
    plid(unsigned skip = 0, unsigned path = 0)
    {
        return WordMeta(static_cast<std::uint16_t>(
            static_cast<unsigned>(TagKind::Plid) | (skip << 2) |
            (path << 6)));
    }

    static constexpr WordMeta
    vsid()
    {
        return WordMeta(static_cast<std::uint16_t>(TagKind::Vsid));
    }

    static constexpr WordMeta
    inlineData(unsigned width_code, unsigned skip = 0, unsigned path = 0)
    {
        return WordMeta(static_cast<std::uint16_t>(
            static_cast<unsigned>(TagKind::Inline) | (width_code << 2) |
            (skip << 4) | (path << 8)));
    }

    constexpr TagKind
    kind() const
    {
        return static_cast<TagKind>(bits_ & 0x3);
    }

    constexpr bool isRaw() const { return kind() == TagKind::Raw; }
    constexpr bool isPlid() const { return kind() == TagKind::Plid; }
    constexpr bool isVsid() const { return kind() == TagKind::Vsid; }
    constexpr bool isInline() const { return kind() == TagKind::Inline; }

    /** Path-compaction skip count (valid for Plid and Inline kinds). */
    constexpr unsigned
    skip() const
    {
        if (isPlid())
            return (bits_ >> 2) & 0xF;
        if (isInline())
            return (bits_ >> 4) & 0xF;
        return 0;
    }

    /** Packed skipped-child-index path (valid for Plid and Inline). */
    constexpr unsigned
    path() const
    {
        if (isPlid())
            return (bits_ >> 6) & 0x3FF;
        if (isInline())
            return (bits_ >> 8) & 0xFF;
        return 0;
    }

    /** Max bits available for the packed path, per kind. */
    static constexpr unsigned
    pathBits(TagKind k)
    {
        return k == TagKind::Plid ? 10 : 8;
    }

    /** Inline element width code (Inline kind only). */
    constexpr unsigned
    widthCode() const
    {
        return (bits_ >> 2) & 0x3;
    }

    /** Inline element width in bits: 8, 16 or 32. */
    constexpr unsigned
    inlineWidth() const
    {
        return 8u << widthCode();
    }

    /** Number of words an inline word packs (64 / width). */
    constexpr unsigned
    inlineWordCount() const
    {
        return 64u / inlineWidth();
    }

    /** Return a copy with skip/path replaced (preserving kind fields). */
    WordMeta
    withPath(unsigned skip, unsigned path) const
    {
        if (isPlid())
            return plid(skip, path);
        return inlineData(widthCode(), skip, path);
    }

    constexpr std::uint16_t value() const { return bits_; }

    friend constexpr bool
    operator==(WordMeta a, WordMeta b)
    {
        return a.bits_ == b.bits_;
    }

  private:
    std::uint16_t bits_;
};

} // namespace hicamp

#endif // HICAMP_COMMON_TYPES_HH
