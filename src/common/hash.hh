/**
 * @file
 * Hash primitives used throughout the model: a 64-bit FNV-1a for byte
 * and word streams, a strong 64-bit mixer, and helpers for deriving
 * hash-bucket numbers and 8-bit signatures from a line-content hash as
 * required by the main-memory organization of paper Fig. 2.
 */

#ifndef HICAMP_COMMON_HASH_HH
#define HICAMP_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>

namespace hicamp {

/** 64-bit FNV-1a offset basis. */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
/** 64-bit FNV-1a prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Incrementally fold one byte into an FNV-1a state. */
inline constexpr std::uint64_t
fnv1aByte(std::uint64_t h, std::uint8_t b)
{
    return (h ^ b) * kFnvPrime;
}

/** Fold a 64-bit value (little-endian byte order) into an FNV-1a state. */
inline constexpr std::uint64_t
fnv1aWord(std::uint64_t h, std::uint64_t w)
{
    for (int i = 0; i < 8; ++i) {
        h = fnv1aByte(h, static_cast<std::uint8_t>(w >> (i * 8)));
    }
    return h;
}

/** FNV-1a over a byte buffer. */
inline std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed = kFnvOffset)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i)
        h = fnv1aByte(h, p[i]);
    return h;
}

/**
 * Fold a 64-bit value into an FNV-1a-style state one whole word at a
 * time. The byte-serial fnv1aWord above multiplies by the prime eight
 * times per word; on the lookup/dedup hot path that dominates the
 * probe cost, so line-content hashing uses this single-multiply fold
 * instead (the final mix64 avalanche restores bit diffusion). Not
 * byte-stream compatible with fnv1aWord — callers pick one scheme and
 * stay with it.
 */
inline constexpr std::uint64_t
fnv1aWordFast(std::uint64_t h, std::uint64_t w)
{
    return (h ^ w) * kFnvPrime;
}

/**
 * Strong finalizer (splitmix64 / murmur3-style avalanche). Used so that
 * bucket index bits and signature bits of a content hash are
 * effectively independent.
 */
inline constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit hashes. */
inline constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Hash-bucket number for a content hash (bucket count must be a power
 * of two). Uses the low bits of the mixed hash.
 */
inline constexpr std::uint64_t
bucketOfHash(std::uint64_t content_hash, std::uint64_t num_buckets)
{
    return content_hash & (num_buckets - 1);
}

/**
 * 8-bit line signature (paper §3.1): derived from hash bits independent
 * of the bucket index so that signature collisions within a bucket stay
 * near the 1/256 ideal. Signature 0 is reserved to mean "empty way", so
 * the value is remapped into 1..255.
 */
inline constexpr std::uint8_t
signatureOfHash(std::uint64_t content_hash)
{
    auto sig = static_cast<std::uint8_t>(content_hash >> 56);
    return sig == 0 ? std::uint8_t{1} : sig;
}

} // namespace hicamp

#endif // HICAMP_COMMON_HASH_HH
