/**
 * @file
 * Memory-ordering role annotations for atomic fields (DESIGN.md §13).
 *
 * Every `std::atomic` member in the model participates in exactly one
 * publication protocol, and its correct memory orders follow from
 * which one.  The vocabulary below makes that role machine-readable,
 * the same way thread_annotations.hh made the §7 lock protocol and
 * ownership.hh made the §10 refcount contract machine-readable:
 *
 *  - `HICAMP_ATOMIC_PUBLISH`: the field publishes other data.  Its
 *    store side must be release (or stronger); each release store
 *    must be paired with at least one acquire-side load of the same
 *    field somewhere in the tree.  Relaxed *loads* are legal only for
 *    re-checks already serialized by a lock (waive with rationale).
 *  - `HICAMP_ATOMIC_CLAIM_CAS`: ownership is claimed by CAS (refcount
 *    resurrection, capacity reservation, record adoption).  CAS sites
 *    must use sane order pairs: failure order no stronger than the
 *    success order, and never release/acq_rel on failure.
 *  - `HICAMP_ATOMIC_COUNTER`: statistics.  All RMWs and stores must
 *    be relaxed — a stronger order here advertises synchronization
 *    that does not exist.  Reads are confined to the declaring
 *    module's accessors or the obs snapshot path (src/obs/); a read
 *    anywhere else is a quiescent-point claim that needs a waiver.
 *  - `HICAMP_ATOMIC_SEQLOCK`: a field read under the SeqCount
 *    optimistic-read protocol (DESIGN.md §7 "VSM roots are
 *    seqlock-published").  Accesses must be relaxed — the SeqCount
 *    fences provide all ordering — and every reader must sit in a
 *    retry loop that re-validates the sequence word (readBegin /
 *    validate); writers run inside writeBegin / writeEnd.
 *  - `HICAMP_ATOMIC_EPOCH`: an epoch word of the §12 reclamation
 *    protocol (a record's published epoch, the global epoch).  Only
 *    the epoch module (src/mem/epoch.*) may touch it, and never with
 *    a relaxed success order: the stable-pin handshake needs the
 *    seq_cst store/fence pairing spelled out in §12.
 *  - `HICAMP_ATOMIC_FLAG`: a standalone state word with no dependent
 *    data of its own.  All-relaxed use is legal (ordering, if any, is
 *    provided externally — say how in the declaration comment).  If
 *    it is used lock-shaped, the acquire/release pairing must be
 *    complete: `test_and_set` at least acquire, `clear` release, and
 *    a release store somewhere requires an acquire-side read.
 *
 * `tools/analyze/atomic_check.py` reads these annotations (by macro
 * name, so the checker works under any compiler), classifies every
 * atomic load/store/RMW/fence in the tree against its field's role,
 * and enforces the per-role rules above.  Bare
 * `std::atomic_thread_fence` calls and un-annotated atomic fields are
 * errors; waive a site only with a written rationale:
 * `// hicamp-atomic: waive(reason)` on the line or the comment run
 * above it.  Functions that *define* a protocol rather than use it
 * (SeqCount's own methods, the epoch advance loop) are marked
 * `// hicamp-atomic: primitive(reason)` above their head.  Under
 * clang the macros additionally expand to [[clang::annotate]]
 * attributes, so AST-level tooling sees the same vocabulary.
 */

#ifndef HICAMP_COMMON_ATOMIC_ANNOTATIONS_HH
#define HICAMP_COMMON_ATOMIC_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define HICAMP_ATOMIC_ANNOTATE(x) [[clang::annotate(x)]]
#endif
#endif
#ifndef HICAMP_ATOMIC_ANNOTATE
#define HICAMP_ATOMIC_ANNOTATE(x) // atomic role annotations: clang only
#endif

/** Field publishes other data: release stores, paired acquire loads. */
#define HICAMP_ATOMIC_PUBLISH HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_publish")

/** Ownership claimed by CAS; failure order <= success, no release. */
#define HICAMP_ATOMIC_CLAIM_CAS                                             \
    HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_claim_cas")

/** Statistic: relaxed RMW only; read via accessors / obs snapshots. */
#define HICAMP_ATOMIC_COUNTER HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_counter")

/** Seqlock-protected word: relaxed ops inside readBegin/validate or
 *  writeBegin/writeEnd; the SeqCount fences provide the ordering. */
#define HICAMP_ATOMIC_SEQLOCK HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_seqlock")

/** §12 epoch word: epoch-module-only, never relaxed on success. */
#define HICAMP_ATOMIC_EPOCH HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_epoch")

/** Standalone state word: all-relaxed or complete acquire/release. */
#define HICAMP_ATOMIC_FLAG HICAMP_ATOMIC_ANNOTATE("hicamp::atomic_flag")

#endif // HICAMP_COMMON_ATOMIC_ANNOTATIONS_HH
