/**
 * @file
 * Structured memory-pressure failure reporting.
 *
 * The paper's memory system is finite by construction: Fig. 2 fixes
 * the bucket geometry, §3.1 gives reference counts a limited width,
 * and the overflow area is a bounded region of DRAM. When those
 * limits are hit the hardware reports failure to software rather than
 * halting, and software unwinds the partially-built segment. This
 * header is the software model of that contract: a status code for
 * every degraded outcome plus the exception that carries it up
 * through the builder / iterator / VSM / container layers.
 *
 * Reference-count contract on failure: any operation that accepts
 * owned PLID references and can throw MemPressureError *consumes*
 * those references on the failure path too (releasing them before the
 * throw), so a caller that catches the error holds exactly the
 * references it held before the call and the heap stays leak-free —
 * verified by the analysis-layer auditor after every injected fault.
 */

#ifndef HICAMP_COMMON_STATUS_HH
#define HICAMP_COMMON_STATUS_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hicamp {

/** Outcome of an operation against the finite memory system. */
enum class MemStatus : std::uint8_t {
    Ok,
    /// line allocation failed: home bucket full and the overflow area
    /// is at capacity, the live-line budget is exhausted, or the
    /// fault injector forced the allocation to fail
    OutOfMemory,
    /// a reference count pinned at its §3.1 saturation ceiling; the
    /// line is immortal from now on (informational, not an error)
    RefcountSaturated,
    /// a bounded commit-retry loop exhausted its attempt budget under
    /// contention without ever winning the CAS
    TooManyConflicts,
    /// request exceeds a structural limit (e.g. a conventional-heap
    /// slab allocation larger than the maximum chunk class)
    Oversized,
};

/** Stable display name of a MemStatus. */
inline const char *
memStatusName(MemStatus s)
{
    switch (s) {
      case MemStatus::Ok:
        return "Ok";
      case MemStatus::OutOfMemory:
        return "OutOfMemory";
      case MemStatus::RefcountSaturated:
        return "RefcountSaturated";
      case MemStatus::TooManyConflicts:
        return "TooManyConflicts";
      case MemStatus::Oversized:
        return "Oversized";
    }
    return "?";
}

/**
 * Thrown when the memory system cannot satisfy a request. Layers
 * between the line store and the application either translate this to
 * a status result (e.g. IteratorRegister::tryCommit) or let it
 * propagate after rolling their partial state back.
 */
class MemPressureError : public std::runtime_error
{
  public:
    MemPressureError(MemStatus status, const std::string &what)
        : std::runtime_error(std::string(memStatusName(status)) + ": " +
                             what),
          status_(status)
    {
    }

    MemStatus status() const { return status_; }

  private:
    MemStatus status_;
};

} // namespace hicamp

#endif // HICAMP_COMMON_STATUS_HH
