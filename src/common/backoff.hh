/**
 * @file
 * Bounded commit retries with randomized exponential backoff.
 *
 * The paper's commit protocol (§3.4) retries a failed CAS after
 * re-merging against the new current root; §5.1.1 notes that under
 * high contention the retry itself becomes the bottleneck. Unbounded
 * spinning also turns pathological contention (or an adversarial
 * workload) into a livelock. Every retry loop in the model therefore
 * runs through a CommitRetry: a configurable attempt cap, a seeded
 * randomized exponential backoff between attempts, and contention
 * counters (conflicts / retries / backoff iterations / exhaustions)
 * surfaced through the stats layer.
 *
 * Counters are atomic: commit loops in the container layer run
 * *outside* the memory system's global lock (only the individual CAS
 * steps take it), so several threads bump them concurrently.
 */

#ifndef HICAMP_COMMON_BACKOFF_HH
#define HICAMP_COMMON_BACKOFF_HH

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/atomic_annotations.hh"
#include "common/rng.hh"

#include "common/status.hh"

namespace hicamp {

/** Shape of a bounded retry loop. */
struct RetryPolicy {
    /// attempts allowed after the first (0 = fail on first conflict)
    unsigned maxRetries = 64;
    /// backoff budget of the first retry, in spin iterations
    unsigned baseSpins = 8;
    /// cap on the exponential growth (spins <= baseSpins << maxShift)
    unsigned maxShift = 10;
    /// stream seed; each CommitRetry derives its own stream so
    /// concurrent loops do not share state
    std::uint64_t seed = 0xb0ff;
};

/** Contention telemetry shared by every retry loop of one machine. */
struct ContentionStats {
    /// commit attempts that lost the CAS race
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> conflicts{0};
    /// attempts re-issued after a conflict or transient failure
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> retries{0};
    /// total randomized backoff iterations spun
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> backoffIters{0};
    /// loops that gave up with MemStatus::TooManyConflicts
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> exhausted{0};

    void
    reset()
    {
        conflicts.store(0, std::memory_order_relaxed);
        retries.store(0, std::memory_order_relaxed);
        backoffIters.store(0, std::memory_order_relaxed);
        exhausted.store(0, std::memory_order_relaxed);
    }
};

/**
 * One bounded retry loop: construct per operation, call onConflict()
 * after each failed attempt. Returns true to go again (after backing
 * off), false when the attempt budget is spent.
 *
 *     CommitRetry retry(policy, &stats);
 *     for (;;) {
 *         if (tryOnce())
 *             return;
 *         if (!retry.onConflict())
 *             throw MemPressureError(MemStatus::TooManyConflicts, ...);
 *     }
 */
class CommitRetry
{
  public:
    CommitRetry(const RetryPolicy &policy, ContentionStats *stats)
        : policy_(policy), stats_(stats),
          rng_(policy.seed ^ mix64(nextStream()))
    {
    }

    unsigned attempts() const { return attempt_; }

    /**
     * Record a lost attempt; back off and return true if the budget
     * allows another try, return false (counting the exhaustion) if
     * not.
     */
    bool
    onConflict()
    {
        if (stats_)
            stats_->conflicts.fetch_add(1, std::memory_order_relaxed);
        if (attempt_ >= policy_.maxRetries) {
            if (stats_)
                stats_->exhausted.fetch_add(1,
                                            std::memory_order_relaxed);
            return false;
        }
        ++attempt_;
        if (stats_)
            stats_->retries.fetch_add(1, std::memory_order_relaxed);
        backoff();
        return true;
    }

  private:
    void
    backoff()
    {
        const unsigned shift =
            attempt_ < policy_.maxShift ? attempt_ : policy_.maxShift;
        const std::uint64_t window =
            std::uint64_t{policy_.baseSpins} << shift;
        const std::uint64_t spins = window ? rng_.below(window) + 1 : 0;
        if (stats_)
            stats_->backoffIters.fetch_add(spins,
                                           std::memory_order_relaxed);
        for (std::uint64_t i = 0; i < spins; ++i) {
            if ((i & 0xff) == 0xff)
                std::this_thread::yield();
            spinSink_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Distinct stream id per loop instance (any thread). */
    static std::uint64_t
    nextStream()
    {
        HICAMP_ATOMIC_COUNTER static std::atomic<std::uint64_t>
            counter{1};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    HICAMP_ATOMIC_COUNTER static inline std::atomic<std::uint64_t>
        spinSink_{0};

    RetryPolicy policy_;
    ContentionStats *stats_;
    Rng rng_;
    unsigned attempt_ = 0;
};

/**
 * Escalate a spent retry budget into the MemPressureError a caller
 * should see: the last observed failure cause if there was one,
 * TooManyConflicts for a plain lost race.
 */
[[noreturn]] inline void
throwRetriesExhausted(MemStatus last, const char *what)
{
    throw MemPressureError(
        last == MemStatus::Ok ? MemStatus::TooManyConflicts : last, what);
}

} // namespace hicamp

#endif // HICAMP_COMMON_BACKOFF_HH
