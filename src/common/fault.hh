/**
 * @file
 * Deterministic fault injector for the memory system.
 *
 * Models the failure sources a real HICAMP machine has to survive:
 * allocation failure under memory pressure, multi-bit DRAM errors
 * that slip past per-line ECC (caught — almost always — by the §3.1
 * content-hash-vs-bucket integrity check), and reference counts
 * pinned at their saturation ceiling. Faults fire either every Nth
 * opportunity (exactly reproducible placement) or with a fixed
 * probability from a seeded stream, so a failing run can be replayed
 * bit-for-bit from its seed.
 *
 * Wiring: MemoryConfig embeds a FaultConfig; the Memory constructor
 * optionally overlays environment variables so an entire test suite
 * or workload binary can run under injection without code changes:
 *
 *   HICAMP_FAULT_SEED           injector seed (default 0x5eed)
 *   HICAMP_FAULT_ALLOC_P        P(allocation fails), e.g. 0.001
 *   HICAMP_FAULT_ALLOC_EVERY    every Nth fresh allocation fails
 *   HICAMP_FAULT_FLIP_P         P(bit flip on a DRAM line fetch)
 *   HICAMP_FAULT_FLIP_EVERY     every Nth DRAM fetch is flipped
 *   HICAMP_FAULT_SATURATE_EVERY every Nth incRef pins the count
 *
 * The overlay is strict: a malformed value (probability outside
 * [0, 1], non-numeric text, a negative count) or an unrecognized
 * HICAMP_FAULT_* variable throws FaultConfigError instead of being
 * silently clamped or ignored — a typo in a fault plan must not
 * quietly run the un-faulted experiment.
 *
 * Injected allocation failures are *transient*: retrying the same
 * allocation later may succeed. That models intermittent pressure
 * (reclamation freeing lines between attempts) and lets the bounded
 * retry loops above absorb low-probability injection while genuine
 * capacity exhaustion still propagates.
 */

#ifndef HICAMP_COMMON_FAULT_HH
#define HICAMP_COMMON_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "common/thread_annotations.hh"

namespace hicamp {

/**
 * A HICAMP_FAULT_* environment variable failed validation: malformed
 * number, probability outside [0, 1], negative count, or a key the
 * injector does not know. Thrown by FaultConfig::fromEnv before any
 * memory system is constructed.
 */
class FaultConfigError : public std::runtime_error
{
  public:
    explicit FaultConfigError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Static description of what to inject, and how often. */
struct FaultConfig {
    std::uint64_t seed = 0x5eed;

    /// P(fresh line allocation fails); 0 disables
    double allocFailP = 0.0;
    /// every Nth fresh allocation fails; 0 disables
    std::uint64_t allocFailEvery = 0;

    /// P(a DRAM line fetch returns flipped bits); 0 disables
    double bitFlipP = 0.0;
    /// every Nth DRAM line fetch is flipped; 0 disables
    std::uint64_t bitFlipEvery = 0;

    /// every Nth incRef slams the count to the saturation ceiling;
    /// 0 disables (no probability mode: saturation is sticky, so
    /// stray injection would make arbitrary test lines immortal)
    std::uint64_t saturateEvery = 0;

    /// honor the HICAMP_FAULT_* environment overlay (tests asserting
    /// exact traffic counts opt out so suite-wide injection cannot
    /// perturb their measurements)
    bool allowEnvOverride = true;

    bool
    anyEnabled() const
    {
        return allocFailP > 0.0 || allocFailEvery != 0 ||
               bitFlipP > 0.0 || bitFlipEvery != 0 || saturateEvery != 0;
    }

    /**
     * @p base overlaid with any HICAMP_FAULT_* environment values.
     * Throws FaultConfigError on malformed values or unknown
     * HICAMP_FAULT_* keys (strict: a typo'd fault plan must fail
     * loudly, not silently run un-faulted).
     */
    static FaultConfig fromEnv(FaultConfig base);
};

/**
 * The runtime injector. Decision points are reached concurrently now
 * that the memory system is sharded, so the tick counters and the
 * shared RNG stream sit behind a small internal mutex; each decision
 * helper bails before locking when its fault class is disabled, so an
 * injector with nothing enabled costs one branch on the hot path.
 * With a single mutator thread the decision stream is still a pure
 * function of (config, seed, call order); under concurrency it is a
 * function of the interleaving, which is what a real fault process
 * looks like anyway.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg = {})
        : cfg_(cfg), rng_(cfg.seed)
    {
    }

    const FaultConfig &config() const { return cfg_; }

    /** Replace the fault plan mid-run (targeted tests; quiescent). */
    void
    reconfigure(const FaultConfig &cfg) HICAMP_EXCLUDES(mutex_)
    {
        CapLockGuard g(mutex_, lockrank::leaf);
        cfg_ = cfg;
        rng_ = Rng(cfg.seed);
        allocTick_ = flipTick_ = satTick_ = 0;
    }

    /** Should this fresh line allocation fail? */
    bool
    failAlloc() HICAMP_EXCLUDES(mutex_)
    {
        if (cfg_.allocFailEvery == 0 && cfg_.allocFailP <= 0.0)
            return false;
        CapLockGuard g(mutex_, lockrank::leaf);
        ++allocTick_;
        if (cfg_.allocFailEvery != 0 &&
            allocTick_ % cfg_.allocFailEvery == 0) {
            ++allocFails_;
            return true;
        }
        if (cfg_.allocFailP > 0.0 && rng_.chance(cfg_.allocFailP)) {
            ++allocFails_;
            return true;
        }
        return false;
    }

    /**
     * Should this DRAM line fetch come back corrupted? On yes, also
     * reports which word and bit to flip.
     */
    bool
    flipBit(unsigned line_words, unsigned *word_idx, unsigned *bit_idx)
        HICAMP_EXCLUDES(mutex_)
    {
        if (cfg_.bitFlipEvery == 0 && cfg_.bitFlipP <= 0.0)
            return false;
        CapLockGuard g(mutex_, lockrank::leaf);
        ++flipTick_;
        bool fire = false;
        if (cfg_.bitFlipEvery != 0 && flipTick_ % cfg_.bitFlipEvery == 0)
            fire = true;
        else if (cfg_.bitFlipP > 0.0 && rng_.chance(cfg_.bitFlipP))
            fire = true;
        if (!fire)
            return false;
        *word_idx = static_cast<unsigned>(rng_.below(line_words));
        *bit_idx = static_cast<unsigned>(rng_.below(64));
        ++bitFlips_;
        return true;
    }

    /** Should this incRef pin the count at the saturation ceiling? */
    bool
    saturateRef() HICAMP_EXCLUDES(mutex_)
    {
        if (cfg_.saturateEvery == 0)
            return false;
        CapLockGuard g(mutex_, lockrank::leaf);
        ++satTick_;
        if (satTick_ % cfg_.saturateEvery != 0)
            return false;
        ++saturations_;
        return true;
    }

    /// @name Injection tallies (what actually fired)
    /// @{
    std::uint64_t
    allocFailsInjected() const HICAMP_EXCLUDES(mutex_)
    {
        CapLockGuard g(mutex_, lockrank::leaf);
        return allocFails_;
    }
    std::uint64_t
    bitFlipsInjected() const HICAMP_EXCLUDES(mutex_)
    {
        CapLockGuard g(mutex_, lockrank::leaf);
        return bitFlips_;
    }
    std::uint64_t
    saturationsInjected() const HICAMP_EXCLUDES(mutex_)
    {
        CapLockGuard g(mutex_, lockrank::leaf);
        return saturations_;
    }
    /// @}

  private:
    /// §7 rank 4 (leaf): nothing else is ever acquired under it
    mutable CapMutex mutex_;
    /// Written only by reconfigure() at quiescent points; the decision
    /// helpers read it lock-free in their disabled-fast-path bail (one
    /// branch when nothing is enabled), then re-read under mutex_.
    FaultConfig cfg_;
    Rng rng_ HICAMP_GUARDED_BY(mutex_);
    std::uint64_t allocTick_ HICAMP_GUARDED_BY(mutex_) = 0;
    std::uint64_t flipTick_ HICAMP_GUARDED_BY(mutex_) = 0;
    std::uint64_t satTick_ HICAMP_GUARDED_BY(mutex_) = 0;
    std::uint64_t allocFails_ HICAMP_GUARDED_BY(mutex_) = 0;
    std::uint64_t bitFlips_ HICAMP_GUARDED_BY(mutex_) = 0;
    std::uint64_t saturations_ HICAMP_GUARDED_BY(mutex_) = 0;
};

} // namespace hicamp

#endif // HICAMP_COMMON_FAULT_HH
