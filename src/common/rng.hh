/**
 * @file
 * Deterministic random-number utilities for workload generation:
 * xoshiro256** engine plus Zipf / power-law samplers used by the
 * memcached request generator and the synthetic corpora.
 */

#ifndef HICAMP_COMMON_RNG_HH
#define HICAMP_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hicamp {

/** xoshiro256** 1.0; seeded deterministically via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t x = seed;
        for (auto &s : s_) {
            x += 0x9e3779b97f4a7c15ull;
            s = mix64(x);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        HICAMP_ASSERT(bound > 0, "below(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        HICAMP_ASSERT(hi >= lo, "bad range");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Pareto-ish power-law sample in [lo, hi] with shape alpha > 0
     * (density ~ x^-(alpha+1)); used for memcached item sizes.
     */
    std::uint64_t
    powerLaw(std::uint64_t lo, std::uint64_t hi, double alpha)
    {
        double u = uniform();
        double lo_d = static_cast<double>(lo);
        double hi_d = static_cast<double>(hi);
        double x =
            lo_d / std::pow(1.0 - u * (1.0 - std::pow(lo_d / hi_d, alpha)),
                            1.0 / alpha);
        if (x > hi_d)
            x = hi_d;
        return static_cast<std::uint64_t>(x);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipf(s) sampler over ranks 1..n using the precomputed CDF; O(log n)
 * per draw. Rank popularity ~ 1/rank^s, the classic model for
 * memcached key popularity.
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double s) : cdf_(n)
    {
        HICAMP_ASSERT(n > 0, "zipf over empty domain");
        double sum = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k)
            sum += 1.0 / std::pow(static_cast<double>(k), s);
        double acc = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k) {
            acc += 1.0 / std::pow(static_cast<double>(k), s) / sum;
            cdf_[k - 1] = acc;
        }
        cdf_.back() = 1.0;
    }

    /** Draw a 0-based rank. */
    std::uint64_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t domain() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace hicamp

#endif // HICAMP_COMMON_RNG_HH
