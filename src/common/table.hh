/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * paper's tables and figure series in a readable aligned form.
 */

#ifndef HICAMP_COMMON_TABLE_HH
#define HICAMP_COMMON_TABLE_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace hicamp {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    /** Render to stdout with a separator under the header. */
    void
    print(FILE *out = stdout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        auto widen = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
                if (row[i].size() > width[i])
                    width[i] = row[i].size();
        };
        widen(header_);
        for (const auto &r : rows_)
            widen(r);

        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < width.size(); ++i) {
                const std::string &cell = i < row.size() ? row[i] : "";
                std::fprintf(out, "%-*s%s", static_cast<int>(width[i]),
                             cell.c_str(),
                             i + 1 < width.size() ? "  " : "");
            }
            std::fprintf(out, "\n");
        };
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        std::fprintf(out, "%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style std::string formatting helper. */
inline std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

} // namespace hicamp

#endif // HICAMP_COMMON_TABLE_HH
