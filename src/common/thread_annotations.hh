/**
 * @file
 * Clang Thread Safety Analysis as a first-class capability model for
 * the sharded memory system (DESIGN.md §7/§8).
 *
 * Three layers live here:
 *
 *  1. `HICAMP_*` annotation macros wrapping clang's thread-safety
 *     attributes. Under any compiler without the attributes (GCC,
 *     MSVC) they expand to nothing, so the annotated code is plain
 *     C++ everywhere and a *capability-checked* dialect under
 *     `clang++ -Wthread-safety -Wthread-safety-beta -Werror` (the CI
 *     `thread-safety` job and the `HICAMP_THREAD_SAFETY` CMake
 *     option).
 *
 *  2. Annotated capability wrappers around the primitives the memory
 *     system actually uses: `CapMutex` / `CapSharedMutex` (std types
 *     are not annotated when libstdc++ provides them), the striped
 *     `StripeBank` the line store's bucket locks live in, the
 *     spinlock `SpinBank` guarding cache sets, and the `SeqCount`
 *     seqlock publishing VSM descriptors. Plus the matching RAII
 *     guards (`CapLockGuard`, `StripeExclusive`, `StripeShared`,
 *     ...), which are `SCOPED_CAPABILITY` so the analysis tracks
 *     their extent.
 *
 *  3. The DESIGN.md §7 lock order as *declared edges*: never-locked
 *     `LockRank` anchor objects, one per rank, chained with
 *     `ACQUIRED_AFTER`. Every guard co-acquires its rank's anchor
 *     alongside the real lock, so acquiring a stripe lock while a
 *     leaf-rank lock is held contradicts the declared DAG and is a
 *     compile error under `-Wthread-safety-beta`. The anchors are
 *     phantom capabilities — no code ever locks one at runtime.
 *     `tools/lint/hicamp_lint.py` cross-checks the edge list declared
 *     here against the prose order in DESIGN.md §7.
 */

#ifndef HICAMP_COMMON_THREAD_ANNOTATIONS_HH
#define HICAMP_COMMON_THREAD_ANNOTATIONS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/atomic_annotations.hh"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HICAMP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef HICAMP_TSA
#define HICAMP_TSA(x) // thread-safety attributes: clang only
#endif

/** Class is a capability (lockable); @p x names its kind. */
#define HICAMP_CAPABILITY(x) HICAMP_TSA(capability(x))
/** Class is an RAII object whose lifetime holds capabilities. */
#define HICAMP_SCOPED_CAPABILITY HICAMP_TSA(scoped_lockable)

/** Field may only be accessed while holding capability @p x. */
#define HICAMP_GUARDED_BY(x) HICAMP_TSA(guarded_by(x))
/** Pointed-to data may only be accessed while holding @p x. */
#define HICAMP_PT_GUARDED_BY(x) HICAMP_TSA(pt_guarded_by(x))

/** DESIGN.md §7 lock-order edges, declared on the capability. */
#define HICAMP_ACQUIRED_BEFORE(...) HICAMP_TSA(acquired_before(__VA_ARGS__))
#define HICAMP_ACQUIRED_AFTER(...) HICAMP_TSA(acquired_after(__VA_ARGS__))

/** Caller must hold the capability exclusively / shared. */
#define HICAMP_REQUIRES(...) \
    HICAMP_TSA(requires_capability(__VA_ARGS__))
#define HICAMP_REQUIRES_SHARED(...) \
    HICAMP_TSA(requires_shared_capability(__VA_ARGS__))

/** Function acquires / releases the capability. */
#define HICAMP_ACQUIRE(...) HICAMP_TSA(acquire_capability(__VA_ARGS__))
#define HICAMP_ACQUIRE_SHARED(...) \
    HICAMP_TSA(acquire_shared_capability(__VA_ARGS__))
#define HICAMP_RELEASE(...) HICAMP_TSA(release_capability(__VA_ARGS__))
#define HICAMP_RELEASE_SHARED(...) \
    HICAMP_TSA(release_shared_capability(__VA_ARGS__))
#define HICAMP_RELEASE_GENERIC(...) \
    HICAMP_TSA(release_generic_capability(__VA_ARGS__))
#define HICAMP_TRY_ACQUIRE(...) \
    HICAMP_TSA(try_acquire_capability(__VA_ARGS__))
#define HICAMP_TRY_ACQUIRE_SHARED(...) \
    HICAMP_TSA(try_acquire_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define HICAMP_EXCLUDES(...) HICAMP_TSA(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the capability guarding it. */
#define HICAMP_RETURN_CAPABILITY(x) HICAMP_TSA(lock_returned(x))
/** Runtime assertion that the capability is held. */
#define HICAMP_ASSERT_CAPABILITY(x) HICAMP_TSA(assert_capability(x))

/**
 * Escape hatch for protocol-safe code the lock model cannot express:
 * seqlock readers and publication-ordered lock-free reads. Every use
 * must cite the DESIGN.md §7 protocol that makes it sound.
 */
#define HICAMP_NO_THREAD_SAFETY_ANALYSIS \
    HICAMP_TSA(no_thread_safety_analysis)

namespace hicamp {

/**
 * A never-locked phantom capability anchoring one rank of the
 * DESIGN.md §7 lock order. Guards co-acquire their rank's anchor so
 * rank inversions surface as `-Wthread-safety-beta` ordering errors
 * even across classes that cannot name each other's members.
 */
class HICAMP_CAPABILITY("lock_rank") LockRank
{
};

/**
 * The §7 order, outermost first (a thread may only acquire locks of
 * strictly later rank than those it holds):
 *   rank 1  Memory's globalLock recursive_mutex (baseline mode only;
 *           conditional acquisition is inexpressible in the analysis,
 *           so it stays unannotated — see DESIGN.md §8)
 *   rank 2  vsm    — SegmentMap::mapMutex_ (+ the per-slot seqlock
 *           write side, entered only under it)
 *   rank 3  stripe — LineStore bucket stripes
 *   rank 4  epoch  — read-side epoch guards (mem/epoch.hh). Never a
 *           blocking lock; ranked so that acquiring a stripe *inside*
 *           an epoch-pinned read section is a compile error — the §12
 *           protocol requires read sections to stay lock-free, and a
 *           stripe acquired under a pinned epoch could deadlock
 *           against a writer flushing limbo (which reacquires
 *           stripes). Taking a guard while *holding* a stripe is
 *           fine (retire pins after locking).
 *   rank 5  leaf   — cache set spinlocks, the fault-injector mutex,
 *           stats shards (lock-free; listed for completeness)
 *   rank 6  server — the serving front-end's per-connection output
 *           locks (src/server/). Terminal by design: a worker fully
 *           materializes its responses against the heap FIRST and
 *           only then locks the connection to append them, so a heap
 *           entry (which may acquire vsm/stripe/leaf locks) while a
 *           connection lock is held inverts the declared order and is
 *           a compile error — "never call into the heap under a
 *           connection lock" as a checked contract, not a comment.
 */
namespace lockrank {
inline LockRank vsm;
inline LockRank stripe HICAMP_ACQUIRED_AFTER(vsm);
inline LockRank epoch HICAMP_ACQUIRED_AFTER(stripe);
inline LockRank leaf HICAMP_ACQUIRED_AFTER(epoch);
inline LockRank server HICAMP_ACQUIRED_AFTER(leaf);
} // namespace lockrank

/** std::mutex as an annotated capability. */
class HICAMP_CAPABILITY("mutex") CapMutex
{
  public:
    void lock() HICAMP_ACQUIRE() { mu_.lock(); }
    void unlock() HICAMP_RELEASE() { mu_.unlock(); }
    bool try_lock() HICAMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/** std::shared_mutex as an annotated capability. */
class HICAMP_CAPABILITY("shared_mutex") CapSharedMutex
{
  public:
    void lock() HICAMP_ACQUIRE() { mu_.lock(); }
    void unlock() HICAMP_RELEASE() { mu_.unlock(); }
    void lock_shared() HICAMP_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() HICAMP_RELEASE_SHARED() { mu_.unlock_shared(); }

  private:
    std::shared_mutex mu_;
};

/**
 * RAII exclusive lock over a CapMutex, co-acquiring the mutex's §7
 * rank anchor so ordering violations are visible to the analysis.
 */
class HICAMP_SCOPED_CAPABILITY CapLockGuard
{
  public:
    CapLockGuard(CapMutex &m, [[maybe_unused]] LockRank &rank)
        HICAMP_ACQUIRE(m, rank)
        : mu_(m)
    {
        mu_.lock();
    }
    ~CapLockGuard() HICAMP_RELEASE() { mu_.unlock(); }

    CapLockGuard(const CapLockGuard &) = delete;
    CapLockGuard &operator=(const CapLockGuard &) = delete;

  private:
    CapMutex &mu_;
};

/**
 * The line store's striped `shared_mutex` bank (stripe = modelled
 * DRAM bank). The analysis cannot track per-index locks, so the whole
 * bank is ONE capability: holding *any* stripe satisfies a
 * `HICAMP_REQUIRES(bank)` contract. That is sound here because the
 * store's protocol never nests two stripes and every guarded access
 * is to state of the stripe actually locked (DESIGN.md §8).
 */
class HICAMP_CAPABILITY("shared_mutex") StripeBank
{
  public:
    explicit StripeBank(unsigned n)
        : mus_(std::make_unique<std::shared_mutex[]>(n))
    {
    }

    void lock(unsigned i) HICAMP_ACQUIRE() { mus_[i].lock(); }
    void unlock(unsigned i) HICAMP_RELEASE() { mus_[i].unlock(); }
    void lockShared(unsigned i) HICAMP_ACQUIRE_SHARED()
    {
        mus_[i].lock_shared();
    }
    void unlockShared(unsigned i) HICAMP_RELEASE_SHARED()
    {
        mus_[i].unlock_shared();
    }

  private:
    std::unique_ptr<std::shared_mutex[]> mus_;
};

/** RAII exclusive hold of one stripe (rank 3 in the §7 order). */
class HICAMP_SCOPED_CAPABILITY StripeExclusive
{
  public:
    StripeExclusive(StripeBank &b, unsigned i)
        HICAMP_ACQUIRE(b, lockrank::stripe)
        : bank_(b), idx_(i)
    {
        bank_.lock(idx_);
    }
    ~StripeExclusive() HICAMP_RELEASE() { bank_.unlock(idx_); }

    StripeExclusive(const StripeExclusive &) = delete;
    StripeExclusive &operator=(const StripeExclusive &) = delete;

  private:
    StripeBank &bank_;
    unsigned idx_;
};

/** RAII shared hold of one stripe (rank 3 in the §7 order). */
class HICAMP_SCOPED_CAPABILITY StripeShared
{
  public:
    StripeShared(StripeBank &b, unsigned i)
        HICAMP_ACQUIRE_SHARED(b, lockrank::stripe)
        : bank_(b), idx_(i)
    {
        bank_.lockShared(idx_);
    }
    ~StripeShared() HICAMP_RELEASE_GENERIC() { bank_.unlockShared(idx_); }

    StripeShared(const StripeShared &) = delete;
    StripeShared &operator=(const StripeShared &) = delete;

  private:
    StripeBank &bank_;
    unsigned idx_;
};

/**
 * A bank of cache-line-padded test-and-set spinlocks (§7 rank 4,
 * leaf): the HICAMP cache's set locks. Like StripeBank, the whole
 * bank is ONE capability — set locks are leaves, never nested with
 * each other or anything below them.
 */
class HICAMP_CAPABILITY("spinlock") SpinBank
{
  public:
    explicit SpinBank(unsigned n) : locks_(new PaddedFlag[n]) {}

    void
    lock(unsigned i) HICAMP_ACQUIRE()
    {
        HICAMP_ATOMIC_FLAG std::atomic_flag &f = locks_[i].flag;
        while (f.test_and_set(std::memory_order_acquire)) {
            // Spin on a plain load (no cache-line ping-pong),
            // yielding periodically so a descheduled holder on an
            // oversubscribed core can make progress.
            unsigned spins = 0;
            while (f.test(std::memory_order_relaxed)) {
                if (++spins == 64) {
                    spins = 0;
                    std::this_thread::yield();
                }
            }
        }
    }
    void
    unlock(unsigned i) HICAMP_RELEASE()
    {
        locks_[i].flag.clear(std::memory_order_release);
    }

  private:
    struct alignas(64) PaddedFlag {
        HICAMP_ATOMIC_FLAG std::atomic_flag flag = ATOMIC_FLAG_INIT;
    };
    std::unique_ptr<PaddedFlag[]> locks_;
};

/**
 * Boehm-style seqlock sequence counter, as a capability: the write
 * side is an exclusive critical section (entered only under the
 * owning structure's writer mutex), the read side is the standard
 * optimistic read/validate pair and holds nothing. Sibling fields
 * published through the counter are `HICAMP_GUARDED_BY(seq)`; their
 * lock-free readers carry `HICAMP_NO_THREAD_SAFETY_ANALYSIS` with a
 * pointer at this protocol (DESIGN.md §7 "VSM roots are
 * seqlock-published").
 */
class HICAMP_CAPABILITY("seqlock") SeqCount
{
  public:
    /** Open the write critical section: bump to odd, fence. */
    // hicamp-atomic: primitive(seqlock write-side entry: the odd
    // bump may be relaxed because writers are externally serialized;
    // the release fence orders it before the section's field stores)
    void
    writeBegin() HICAMP_ACQUIRE()
    {
        const std::uint32_t s0 = v_.load(std::memory_order_relaxed);
        v_.store(s0 + 1, std::memory_order_relaxed);
        // hicamp-atomic: waive(seqlock protocol fence: orders the odd
        // bump before the guarded field stores for readers)
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Publish: bump back to even with release ordering. */
    // hicamp-atomic: primitive(seqlock write-side exit: the release
    // store of the even count publishes the section's field stores)
    void
    writeEnd() HICAMP_RELEASE()
    {
        v_.store(v_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
    }

    /** Reader: current sequence (acquire; odd = writer in flight). */
    // hicamp-atomic: primitive(seqlock read-side entry: acquire pairs
    // with writeEnd's release so the guarded loads see a count's
    // fields; callers loop on readBegin/validate)
    std::uint32_t
    readBegin() const
    {
        return v_.load(std::memory_order_acquire);
    }

    /** Reader: true if the fields read since readBegin() are a
     *  consistent snapshot of sequence @p s1. */
    // hicamp-atomic: primitive(seqlock read-side exit: the acquire
    // fence orders the guarded loads before the re-check, so an
    // unchanged even count proves an untorn snapshot)
    bool
    validate(std::uint32_t s1) const
    {
        // hicamp-atomic: waive(seqlock protocol fence: keeps the
        // guarded field loads from sinking below the re-check)
        std::atomic_thread_fence(std::memory_order_acquire);
        return v_.load(std::memory_order_relaxed) == s1;
    }

  private:
    HICAMP_ATOMIC_SEQLOCK std::atomic<std::uint32_t> v_{0};
};

} // namespace hicamp

#endif // HICAMP_COMMON_THREAD_ANNOTATIONS_HH
