/**
 * @file
 * Reference-ownership annotations for the HICAMP refcount discipline
 * (DESIGN.md §10).
 *
 * Every PLID value held by the model owns one reference (mem/memory.hh
 * header comment); the vocabulary below makes each function's share of
 * that contract machine-readable, the same way thread_annotations.hh
 * made the §7 lock protocol machine-readable for clang's TSA:
 *
 *  - `HICAMP_RETURNS_REF` (on a function): the returned Plid / Entry /
 *    SegDesc owns one fresh reference the caller must release or
 *    transfer. Carries [[nodiscard]], so silently dropping the handle
 *    is a compile error everywhere.
 *  - `HICAMP_CONSUMES_REF` (on a parameter): the callee takes over the
 *    caller's reference(s) in the argument — on *every* path,
 *    including failure (the repo-wide consume-on-failure rule).
 *  - `HICAMP_BORROWS_REF` (on a parameter): the callee uses the
 *    reference but ownership stays with the caller.
 *  - `HICAMP_ACQUIRES_REF` (on a function): acquires one reference on
 *    the passed-in PLID/entry on behalf of the caller (incRef-shaped;
 *    the result, if any, is a convenience copy of the argument).
 *  - `HICAMP_RELEASES_REF` (on a function): releases one
 *    caller-owned reference of the argument (decRef-shaped).
 *  - `HICAMP_REF_PRIMITIVE` (on a function): this function *is* part
 *    of the refcount machinery (Memory / LineStore internals); its
 *    body defines the semantics rather than using them, and the
 *    static checker skips it.
 *
 * `tools/analyze/refcount_check.py` reads these annotations (by macro
 * name, so the checker works under any compiler) and walks the CFG of
 * every function touching Plid references, reporting leak-on-early-
 * return, double-release, use-after-release and missing
 * consume-on-failure. Under clang the macros additionally expand to
 * [[clang::annotate]] attributes, so AST-level tooling sees the same
 * vocabulary.
 *
 * The RAII layer making most manual calls unnecessary lives in
 * mem/plid_ref.hh (PlidRef) and seg/entry_ref.hh (EntryRef /
 * OwnedEntries).
 */

#ifndef HICAMP_COMMON_OWNERSHIP_HH
#define HICAMP_COMMON_OWNERSHIP_HH

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::annotate)
#define HICAMP_REF_ANNOTATE(x) [[clang::annotate(x)]]
#endif
#endif
#ifndef HICAMP_REF_ANNOTATE
#define HICAMP_REF_ANNOTATE(x) // ownership annotations: clang only
#endif

/** Returned value owns one reference; dropping it is a leak. */
#define HICAMP_RETURNS_REF                                                  \
    [[nodiscard("returned value owns a line reference; release or "         \
                "transfer it")]]                                            \
    HICAMP_REF_ANNOTATE("hicamp::returns_ref")

/** Parameter: callee consumes the reference(s), even on failure. */
#define HICAMP_CONSUMES_REF HICAMP_REF_ANNOTATE("hicamp::consumes_ref")

/** Parameter: callee borrows; the caller keeps ownership. */
#define HICAMP_BORROWS_REF HICAMP_REF_ANNOTATE("hicamp::borrows_ref")

/** Function acquires one reference on its argument for the caller. */
#define HICAMP_ACQUIRES_REF HICAMP_REF_ANNOTATE("hicamp::acquires_ref")

/** Function releases one caller-owned reference of its argument. */
#define HICAMP_RELEASES_REF HICAMP_REF_ANNOTATE("hicamp::releases_ref")

/** Function is refcount machinery; the static checker skips its body. */
#define HICAMP_REF_PRIMITIVE HICAMP_REF_ANNOTATE("hicamp::ref_primitive")

#endif // HICAMP_COMMON_OWNERSHIP_HH
