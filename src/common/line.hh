/**
 * @file
 * The fixed-size memory line: the unit of content-uniqueness in the
 * HICAMP store. A line is lineWords() tagged words; content identity
 * (and therefore deduplication) covers both the word values and their
 * hardware tags.
 */

#ifndef HICAMP_COMMON_LINE_HH
#define HICAMP_COMMON_LINE_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstring>

#include "common/atomic_annotations.hh"
#include "common/hash.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace hicamp {

/**
 * A single memory line. Sized at construction to the machine's line
 * width (2, 4 or 8 words for 16-, 32- or 64-byte lines); storage is a
 * fixed-capacity array so lines are cheap to copy and hash.
 */
class Line
{
  public:
    Line() : nWords_(0) {}

    /** An all-zero line of @p n_words words. */
    explicit Line(unsigned n_words) : nWords_(n_words)
    {
        HICAMP_ASSERT(n_words >= 2 && n_words <= kMaxLineWords &&
                          (n_words & (n_words - 1)) == 0,
                      "line width must be 2, 4 or 8 words");
        words_.fill(0);
        metas_.fill(WordMeta::raw());
    }

    // The memoized content hash is an atomic so that threads sharing a
    // stored line (overflow entries, cached cache-fill content) may
    // race benignly on filling it; copies carry the cached value.
    Line(const Line &o)
        : nWords_(o.nWords_), words_(o.words_), metas_(o.metas_),
          hashCache_(o.hashCache_.load(std::memory_order_relaxed))
    {
    }

    Line &
    operator=(const Line &o)
    {
        nWords_ = o.nWords_;
        words_ = o.words_;
        metas_ = o.metas_;
        hashCache_.store(o.hashCache_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        return *this;
    }

    unsigned size() const { return nWords_; }
    std::size_t bytes() const { return nWords_ * kWordBytes; }

    Word
    word(unsigned i) const
    {
        HICAMP_ASSERT(i < nWords_, "line word index out of range");
        return words_[i];
    }

    WordMeta
    meta(unsigned i) const
    {
        HICAMP_ASSERT(i < nWords_, "line meta index out of range");
        return metas_[i];
    }

    void
    set(unsigned i, Word w, WordMeta m = WordMeta::raw())
    {
        HICAMP_ASSERT(i < nWords_, "line word index out of range");
        words_[i] = w;
        metas_[i] = m;
        hashCache_.store(kHashUnset, std::memory_order_relaxed);
    }

    /** True iff every word is zero with a Raw tag. */
    bool
    isZero() const
    {
        for (unsigned i = 0; i < nWords_; ++i) {
            if (words_[i] != 0 || !(metas_[i] == WordMeta::raw()))
                return false;
        }
        return true;
    }

    /** Load raw little-endian bytes into the line (Raw tags). */
    void
    loadBytes(const void *src, std::size_t len)
    {
        HICAMP_ASSERT(len <= bytes(), "byte load larger than line");
        words_.fill(0);
        metas_.fill(WordMeta::raw());
        std::memcpy(words_.data(), src, len);
        hashCache_.store(kHashUnset, std::memory_order_relaxed);
    }

    /** Store the line's raw bytes out (little-endian). */
    void
    storeBytes(void *dst) const
    {
        std::memcpy(dst, words_.data(), bytes());
    }

    /**
     * Content hash covering word values and tags. Computed word-at-a-
     * time (one multiply per word, not eight) and memoized: the dedup
     * protocol hashes the same content several times per lookup
     * (cache probe, store probe, insert), and the store hashes again
     * on deallocation and audit sweeps. A hash that happens to equal
     * the unset sentinel is simply recomputed each call.
     */
    std::uint64_t
    contentHash() const
    {
        std::uint64_t cached = hashCache_.load(std::memory_order_relaxed);
        if (cached != kHashUnset)
            return cached;
        std::uint64_t h = kFnvOffset;
        for (unsigned i = 0; i < nWords_; ++i) {
            h = fnv1aWordFast(h, words_[i]);
            h = fnv1aWordFast(h, metas_[i].value());
        }
        h = mix64(h);
        if (h != kHashUnset)
            hashCache_.store(h, std::memory_order_relaxed);
        return h;
    }

    friend bool
    operator==(const Line &a, const Line &b)
    {
        if (a.nWords_ != b.nWords_)
            return false;
        for (unsigned i = 0; i < a.nWords_; ++i) {
            if (a.words_[i] != b.words_[i] ||
                !(a.metas_[i] == b.metas_[i])) {
                return false;
            }
        }
        return true;
    }

  private:
    /// hashCache_ value meaning "not yet computed"
    static constexpr std::uint64_t kHashUnset = 0;

    unsigned nWords_;
    std::array<Word, kMaxLineWords> words_;
    std::array<WordMeta, kMaxLineWords> metas_;
    HICAMP_ATOMIC_FLAG mutable std::atomic<std::uint64_t> hashCache_{
        kHashUnset};
};

/** std::hash adapter so Line can key unordered containers. */
struct LineHash {
    std::size_t
    operator()(const Line &l) const
    {
        return static_cast<std::size_t>(l.contentHash());
    }
};

} // namespace hicamp

#endif // HICAMP_COMMON_LINE_HH
