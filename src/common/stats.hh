/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package: components expose Counter members registered in a StatGroup
 * so benches and tests can enumerate, print and reset them uniformly.
 *
 * Concurrency (DESIGN.md §7/§8): the stats layer is lock-free —
 * AtomicCounter is a relaxed atomic and ShardedCounter stripes
 * per-thread shards — so it holds no capability in the thread-safety
 * model and is safe to bump under any (or no) memory-system lock.
 * Plain Counter is single-threaded by contract: it may only be used
 * where some outer serialization (a test, a bench's setup phase)
 * already exists.
 */

#ifndef HICAMP_COMMON_STATS_HH
#define HICAMP_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_annotations.hh"

namespace hicamp {

/** A single monotonically increasing statistic. */
class Counter
{
  public:
    Counter() : value_(0) {}

    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_;
};

/**
 * A counter bumped outside any lock (e.g. the contention telemetry in
 * the container-layer commit loops, which run concurrently without
 * the memory system's global lock). Relaxed ordering: these are pure
 * tallies, never used for synchronization.
 */
class AtomicCounter
{
  public:
    AtomicCounter() : value_(0) {}

    void operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void operator++() { *this += 1; }
    void operator++(int) { *this += 1; }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> value_;
};

/**
 * A hot-path counter bumped concurrently by many threads. Instead of
 * one contended cache line (an AtomicCounter under load ping-pongs its
 * line between cores), the tally is striped over cache-line-padded
 * shards; each thread picks a home shard once and keeps relaxed
 * fetch_adds local to it. value() sums the shards — exact whenever the
 * readers care (quiescent points, end-of-run reports), monotone and
 * race-free always.
 */
class ShardedCounter
{
  public:
    static constexpr unsigned kShards = 16; // power of two

    ShardedCounter() = default;
    ShardedCounter(const ShardedCounter &) = delete;
    ShardedCounter &operator=(const ShardedCounter &) = delete;

    void
    operator+=(std::uint64_t n)
    {
        shards_[homeShard()].v.fetch_add(n, std::memory_order_relaxed);
    }
    void operator++() { *this += 1; }
    void operator++(int) { *this += 1; }

    std::uint64_t
    value() const
    {
        std::uint64_t t = 0;
        for (const auto &s : shards_)
            t += s.v.load(std::memory_order_relaxed);
        return t;
    }

    void
    reset()
    {
        for (auto &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard {
        HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> v{0};
    };

    /** Stable per-thread shard index (round-robin assignment). */
    static unsigned
    homeShard()
    {
        HICAMP_ATOMIC_COUNTER static std::atomic<unsigned> next{0};
        thread_local unsigned slot =
            next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
        return slot;
    }

    Shard shards_[kShards];
};

/** A named collection of counters owned by a component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter; the group does not own it. */
    void
    add(const std::string &stat_name, Counter *c)
    {
        stats_.push_back({stat_name, [c] { return c->value(); },
                          [c] { c->reset(); }});
    }

    void
    add(const std::string &stat_name, AtomicCounter *c)
    {
        stats_.push_back({stat_name, [c] { return c->value(); },
                          [c] { c->reset(); }});
    }

    void
    add(const std::string &stat_name, ShardedCounter *c)
    {
        stats_.push_back({stat_name, [c] { return c->value(); },
                          [c] { c->reset(); }});
    }

    void
    add(const std::string &stat_name,
        HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> *c)
    {
        stats_.push_back(
            {stat_name,
             [c] { return c->load(std::memory_order_relaxed); },
             [c] { c->store(0, std::memory_order_relaxed); }});
    }

    const std::string &name() const { return name_; }

    std::vector<std::pair<std::string, std::uint64_t>>
    snapshot() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(stats_.size());
        for (const auto &s : stats_)
            out.emplace_back(s.name, s.get());
        return out;
    }

    void
    resetAll()
    {
        for (auto &s : stats_)
            s.reset();
    }

  private:
    struct Slot {
        std::string name;
        std::function<std::uint64_t()> get;
        std::function<void()> reset;
    };

    std::string name_;
    std::vector<Slot> stats_;
};

} // namespace hicamp

#endif // HICAMP_COMMON_STATS_HH
