/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package: components expose Counter members registered in a StatGroup
 * so benches and tests can enumerate, print and reset them uniformly.
 */

#ifndef HICAMP_COMMON_STATS_HH
#define HICAMP_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hicamp {

/** A single monotonically increasing statistic. */
class Counter
{
  public:
    Counter() : value_(0) {}

    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_;
};

/** A named collection of counters owned by a component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter; the group does not own it. */
    void
    add(const std::string &stat_name, Counter *c)
    {
        stats_.emplace_back(stat_name, c);
    }

    const std::string &name() const { return name_; }

    std::vector<std::pair<std::string, std::uint64_t>>
    snapshot() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(stats_.size());
        for (const auto &[n, c] : stats_)
            out.emplace_back(n, c->value());
        return out;
    }

    void
    resetAll()
    {
        for (auto &[n, c] : stats_) {
            (void)n;
            c->reset();
        }
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, Counter *>> stats_;
};

} // namespace hicamp

#endif // HICAMP_COMMON_STATS_HH
