/**
 * @file
 * Minimal gem5-style logging / assertion helpers.
 *
 * panic()  — a simulator bug: something that must never happen did.
 * fatal()  — a user/configuration error the simulation cannot survive.
 * warn()   — questionable but survivable condition.
 * inform() — plain status output.
 */

#ifndef HICAMP_COMMON_LOGGING_HH
#define HICAMP_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hicamp {

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace hicamp

#define HICAMP_PANIC(msg) ::hicamp::panicImpl(__FILE__, __LINE__, (msg))
#define HICAMP_FATAL(msg) ::hicamp::fatalImpl(__FILE__, __LINE__, (msg))

/** Invariant check that stays on in release builds (simulator bug). */
#define HICAMP_ASSERT(cond, msg)                                          \
    do {                                                                  \
        if (!(cond))                                                      \
            HICAMP_PANIC(std::string("assertion '" #cond "' failed: ") + \
                         (msg));                                          \
    } while (0)

/**
 * Hot-path invariant check, compiled out in optimized builds (NDEBUG).
 * Use for per-word / per-step checks inside the line store and the
 * iterator register so release benchmarks keep their timing while
 * Debug (and sanitizer) builds verify much more.
 */
#ifdef NDEBUG
#define HICAMP_DEBUG_ASSERT(cond, msg)                                    \
    do {                                                                  \
    } while (0)
#else
#define HICAMP_DEBUG_ASSERT(cond, msg) HICAMP_ASSERT(cond, msg)
#endif

#endif // HICAMP_COMMON_LOGGING_HH
