#!/usr/bin/env python3
"""Path-sensitive refcount-ownership checker for the HICAMP line
reference discipline (DESIGN.md §10; companion of tools/lint/
hicamp_lint.py, which keeps the coarser function-granularity rule).

Every PLID value held by the model owns one line reference.  The
annotation vocabulary in src/common/ownership.hh makes each function's
share of that contract machine-readable; this checker harvests those
annotations into a knowledge base (KB), then walks every path through
the statement tree of every function that touches references and
reports where a path ends with the discipline violated.

Rules
-----
leak
    A path reaches ``return`` (or falls off the end of the function)
    while a local still owns a reference produced by a
    ``HICAMP_RETURNS_REF`` call (``lookup``, ``internLine``,
    ``makeNode``, ``boxSegment``, ...) that was neither released,
    transferred to a consuming callee, nor returned.

leak-on-throw
    Same, but the path ends at a ``throw`` — the consume-on-failure
    rule means unwinding is *not* an excuse to drop a reference.

double-release
    A release primitive (``decRef``, ``release(e)``, ``releaseSeg``,
    ...) runs on a local whose reference was already released on this
    path.

use-after-release
    A released local is subsequently read (passed to a call, returned,
    or mentioned) before being re-assigned a fresh reference.  Limbo
    retirement (DESIGN.md §12) is a release in this sense: ``retire``/
    ``freeLine`` consume the store's reference even though the line
    remains observable in limbo until grace expiry, so handing the
    same PLID to ``EpochManager::defer`` (or any consuming call)
    afterwards is flagged.

unbalanced-acquire
    A bare acquire (``incRef``, ``retain`` with unused result,
    ``tryRetain`` succeeding into a branch) has no matching release or
    ownership-consuming transfer on some path.  ``tryRetain`` is
    branch-sensitive: only the success branch owes the release.

discarded-ref
    The result of a ``HICAMP_RETURNS_REF`` call is ignored outright.
    ``[[nodiscard]]`` catches this at compile time; the checker keeps
    fixtures honest without a compiler.  An explicit ``(void)`` cast,
    a ``release()``/``disown()`` transfer, or nesting inside another
    call's argument list is a deliberate hand-off and stays silent.

consumes-param-not-consumed
    A function declaring ``HICAMP_CONSUMES_REF`` on a parameter never
    touches that parameter in any discharging position — the taken-over
    reference cannot have gone anywhere.

waiver-missing-reason
    ``// hicamp-refcount: waive()`` with an empty rationale.  Waivers
    are load-bearing documentation; the reason is mandatory.

Waive a finding with ``// hicamp-refcount: waive(<reason>)`` on the
finding's line or in the contiguous ``//`` comment run directly above.

Engine: token-level by default; uses libclang for exact function
extents when the ``clang`` python bindings are importable (CI installs
them; the container image does not, so the token engine is the
reference).  Functions marked ``HICAMP_REF_PRIMITIVE`` — the refcount
machinery itself — are skipped: their bodies define the semantics
rather than using them.  Path enumeration is capped (kPathCap); past
the cap only the first branch of further forks is followed.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

kPathCap = 4096

WAIVER_RE = re.compile(r"hicamp-refcount:\s*waive\(")
WAIVER_EMPTY_RE = re.compile(r"hicamp-refcount:\s*waive\(\s*\)")

# Types whose destructor already balances the reference: assignments
# into them are self-managing, not a tracked ownership transfer.
RAII_TYPES = ("PlidRef", "EntryRef", "OwnedEntries")

# Seed KB: the primitive vocabulary, present even when harvesting sees
# only part of the tree (fixture runs pass single files).
SEED_PRODUCERS = {
    "lookup", "internLine", "makeLeaf", "makeNode", "build",
    "buildBytes", "buildWords", "setWord", "snapshot", "lift",
    "boxSegment",
}
SEED_ACQUIRERS = {"incRef", "retain", "incRefIfLive", "addRef",
                  "tryRetain", "acquire", "tryAcquire"}
SEED_TRY_ACQUIRERS = {"tryRetain", "incRefIfLive", "tryAcquire"}
SEED_RELEASERS = {"decRef", "release", "releaseSeg", "releaseSnapshot",
                  "releaseWords", "retire", "freeLine", "reset"}
SEED_CONSUMER_INDICES = {
    "internLine": {0}, "intern": {1}, "makeLeaf": {0}, "makeNode": {0},
    "build": {0}, "setWord": {3}, "push": {0}, "adopt": {1},
    "create": {0}, "mcas": {2}, "lift": {0}, "write": {0},
    # EpochManager::defer(fn, ctx, arg) — §12 limbo retirement: the
    # epoch domain takes over the retired line's storage reference
    # and runs fn at grace expiry.  Retiring (retire/freeLine) already
    # consumed the store's reference, so deferring a line that was
    # *also* released on this path is a double hand-off of a dead
    # reference — which the consume-on-released check reports as
    # use-after-release.
    "defer": {1, 2},
}

KEYWORDS = {"if", "for", "while", "switch", "return", "catch", "sizeof",
            "throw", "do", "else", "new", "delete", "alignof",
            "static_assert", "decltype"}
NOISE_IDS = {"std", "static_cast", "const_cast", "reinterpret_cast",
             "dynamic_cast", "this", "nullptr", "true", "false",
            }

ANNOT_NAME_RE = re.compile(
    r"HICAMP_(RETURNS|CONSUMES|BORROWS|ACQUIRES|RELEASES)_REF|"
    r"HICAMP_REF_PRIMITIVE")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token scans don't match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _waived_at(raw_lines, lineno, waiver_re=WAIVER_RE):
    """True if the waiver marker sits on the flagged line or in the
    contiguous run of // comment lines directly above it."""
    if 1 <= lineno <= len(raw_lines) and \
            waiver_re.search(raw_lines[lineno - 1]):
        return True
    ln = lineno - 1
    while 1 <= ln <= len(raw_lines) and \
            raw_lines[ln - 1].lstrip().startswith("//"):
        if waiver_re.search(raw_lines[ln - 1]):
            return True
        ln -= 1
    return False


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Knowledge base


class KB:
    """Role-by-name map of the ownership vocabulary: seeded with the
    primitive set, extended by harvesting the annotation macros from
    the declarations under --root's src/."""

    def __init__(self):
        self.producers = set(SEED_PRODUCERS)
        self.acquirers = set(SEED_ACQUIRERS)
        self.try_acquirers = set(SEED_TRY_ACQUIRERS)
        self.releasers = set(SEED_RELEASERS)
        self.consumer_indices = {k: set(v) for k, v in
                                 SEED_CONSUMER_INDICES.items()}
        self.consumed_params = {}  # name -> {param names}

    def harvest(self, root):
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            return
        for dirpath, _, files in os.walk(src):
            for f in sorted(files):
                if f.endswith((".hh", ".cc")):
                    try:
                        text = open(os.path.join(dirpath, f),
                                    encoding="utf-8").read()
                    except OSError:
                        continue
                    self.harvest_text(strip_comments_and_strings(text))

    def harvest_text(self, code):
        # RETURNS/ACQUIRES/RELEASES precede the declarator: the next
        # `name(` after the macro is the annotated function.
        for macro, bucket in (("HICAMP_RETURNS_REF", self.producers),
                              ("HICAMP_ACQUIRES_REF", self.acquirers),
                              ("HICAMP_RELEASES_REF", self.releasers)):
            for m in re.finditer(r"\b" + macro + r"\b", code):
                nm = re.search(r"\b([A-Za-z_]\w*)\s*\(",
                               code[m.end():m.end() + 400])
                if nm and not nm.group(1).startswith("HICAMP_") \
                        and nm.group(1) not in KEYWORDS:
                    name = nm.group(1)
                    # release()/disown() are the RAII transfer forms:
                    # producer semantics only with zero args, which
                    # is_producer_use special-cases — classifying the
                    # names as producers would shadow the release
                    # primitive of the same name.
                    if bucket is self.producers and \
                            name in ("release", "disown"):
                        continue
                    bucket.add(name)
        # CONSUMES sits inside a parameter list: find the enclosing
        # `name( ... )`, record both the argument index (for call-site
        # matching) and the parameter name (for definition matching).
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", code):
            name = m.group(1)
            if name in KEYWORDS or name.startswith("HICAMP_"):
                continue
            span = balanced_span(code, m.end() - 1)
            if span is None:
                continue
            inner = code[m.end():span - 1]
            if "HICAMP_CONSUMES_REF" not in inner:
                continue
            for idx, param in enumerate(split_top_commas(inner)):
                if "HICAMP_CONSUMES_REF" not in param:
                    continue
                self.consumer_indices.setdefault(name, set()).add(idx)
                pname = param_name(param)
                if pname:
                    self.consumed_params.setdefault(
                        name, set()).add(pname)


def balanced_span(code, open_paren):
    """Index one past the close paren matching code[open_paren]."""
    d = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            d += 1
        elif code[j] == ")":
            d -= 1
            if d == 0:
                return j + 1
    return None


def split_top_commas(text):
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def param_name(param):
    """Last identifier of a parameter declaration (default stripped)."""
    p = param.split("=")[0]
    ids = re.findall(r"[A-Za-z_]\w*", p)
    ids = [i for i in ids if i not in KEYWORDS and
           not i.startswith("HICAMP_") and i not in
           ("const", "unsigned", "signed", "struct", "class")]
    return ids[-1] if ids else None


def base_id(expr):
    """First meaningful identifier of an argument expression — the
    variable whose ownership the expression stands for (``*merged`` ->
    merged, ``words + start`` -> words, ``d.root`` -> d)."""
    for m in re.finditer(r"[A-Za-z_]\w*", expr):
        if m.group(0) not in NOISE_IDS and m.group(0) not in KEYWORDS:
            return m.group(0)
    return None


# ---------------------------------------------------------------------------
# Function extraction (shared idiom with hicamp_lint)


def functions_tokens(code):
    """Yield (start_line, head, body) for every function definition:
    a ``{`` following ``)``, with head = text since the previous
    top-level separator (``;`` ``}`` ``{``) — the declarator carrying
    the annotation macros."""
    out = []
    i, n = 0, len(code)
    line = 1
    last_nonspace = ""
    head_start = 0
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
        elif c == "{":
            if last_nonspace == ")":
                head = code[head_start:i]
                j, d, l2 = i + 1, 1, line
                while j < n and d:
                    if code[j] == "\n":
                        l2 += 1
                    elif code[j] == "{":
                        d += 1
                    elif code[j] == "}":
                        d -= 1
                    j += 1
                out.append((line, head, code[i + 1:j - 1]))
                line = l2
                i = j
                last_nonspace = "}"
                head_start = i
                continue
            head_start = i + 1
        elif c in ";}":
            head_start = i + 1
        if not c.isspace():
            last_nonspace = c
        i += 1
    return out


def functions_libclang(path, code):
    """Exact extents via libclang when the bindings exist; None (token
    fallback) otherwise.  Head/body split stays token-level inside the
    extent — the annotations are macro names in the source text."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-Isrc"])
        lines = code.splitlines()
        out = []
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FUNCTION_DECL,
                            cindex.CursorKind.CXX_METHOD,
                            cindex.CursorKind.FUNCTION_TEMPLATE,
                            cindex.CursorKind.CONSTRUCTOR) \
                    and cur.is_definition() \
                    and cur.location.file \
                    and cur.location.file.name == path:
                lo, hi = cur.extent.start.line, cur.extent.end.line
                text = "\n".join(lines[lo - 1:hi])
                m = re.search(r"\)\s*[^){]*\{", text)
                if not m:
                    continue
                brace = text.find("{", m.start())
                out.append((lo, text[:brace], text[brace + 1:]))
        return out or None
    except Exception:
        return None


def head_function(head):
    """(name, [param names]) of the declarator in head, or (None, [])."""
    for m in reversed(list(re.finditer(r"\b([A-Za-z_]\w*)\s*\(", head))):
        name = m.group(1)
        if name in KEYWORDS or name.startswith("HICAMP_") or \
                name == "noexcept":
            continue
        span = balanced_span(head, m.end() - 1)
        if span is None:
            continue
        params = [param_name(p) for p in
                  split_top_commas(head[m.end():span - 1])]
        return name, [p for p in params if p]
    return None, []


# ---------------------------------------------------------------------------
# Statement tree


class Stmt:
    def __init__(self, kind, line, text="", cond="", children=None,
                 orelse=None, catches=None):
        self.kind = kind        # stmt/return/throw/if/loop/try/block
        self.line = line
        self.text = text
        self.cond = cond
        self.children = children or []
        self.orelse = orelse
        self.catches = catches or []


def parse_stmts(code, line0):
    """Parse a function body into a statement tree.  Whole-statement
    granularity: a simple statement's text runs to the ``;`` at zero
    paren/brace nesting, so init-lists and lambdas stay inside."""
    stmts, i = _parse_seq(code, 0, line0)
    return stmts


def _line_at(code, i, line0):
    return line0 + code.count("\n", 0, i)


def _skip_ws(code, i):
    while i < len(code) and code[i].isspace():
        i += 1
    return i


def _read_balanced(code, i, open_c, close_c):
    d = 0
    for j in range(i, len(code)):
        if code[j] == open_c:
            d += 1
        elif code[j] == close_c:
            d -= 1
            if d == 0:
                return j + 1
    return len(code)


def _read_simple(code, i):
    """Advance past one simple statement (to just after its ``;``)."""
    pd = bd = 0
    j = i
    n = len(code)
    while j < n:
        c = code[j]
        if c == "(":
            pd += 1
        elif c == ")":
            pd -= 1
        elif c == "{":
            bd += 1
        elif c == "}":
            if bd == 0:
                return j  # statement ends at enclosing block close
            bd -= 1
        elif c == ";" and pd == 0 and bd == 0:
            return j + 1
        j += 1
    return n


def _parse_seq(code, i, line0):
    out = []
    n = len(code)
    while True:
        i = _skip_ws(code, i)
        if i >= n:
            return out, i
        node, i = _parse_one(code, i, line0)
        if node is not None:
            out.append(node)


def _parse_one(code, i, line0):
    n = len(code)
    line = _line_at(code, i, line0)
    kw = re.match(r"(if|for|while|do|switch|try|return|throw|else|"
                  r"break|continue|case|default)\b", code[i:])
    c = code[i]
    if c == "{":
        end = _read_balanced(code, i, "{", "}")
        children, _ = _parse_seq(code[i + 1:end - 1], 0,
                                 _line_at(code, i + 1, line0))
        return Stmt("block", line, children=children), end
    if c == "}":
        # stray close (we parse body text without its braces)
        return None, i + 1
    if c == ";":
        return None, i + 1
    if kw:
        word = kw.group(1)
        if word in ("if", "while", "for", "switch"):
            p = code.find("(", i)
            pe = _read_balanced(code, p, "(", ")")
            cond = code[p + 1:pe - 1]
            body, j = _parse_stmt_or_block(code, pe, line0)
            if word == "if":
                j2 = _skip_ws(code, j)
                orelse = None
                if code[j2:j2 + 4] == "else" and \
                        not re.match(r"\w", code[j2 + 4:j2 + 5]):
                    orelse, j = _parse_stmt_or_block(code, j2 + 4, line0)
                return Stmt("if", line, cond=cond,
                            children=[body] if body else [],
                            orelse=[orelse] if orelse else None), j
            kind = "block" if word == "switch" else "loop"
            return Stmt(kind, line, cond=cond,
                        children=[body] if body else []), j
        if word == "do":
            body, j = _parse_stmt_or_block(code, i + 2, line0)
            j = _skip_ws(code, j)
            if code[j:j + 5] == "while":
                p = code.find("(", j)
                j = _read_balanced(code, p, "(", ")")
                j = _skip_ws(code, j)
                if j < n and code[j] == ";":
                    j += 1
            return Stmt("block", line,
                        children=[body] if body else []), j
        if word == "try":
            j = _skip_ws(code, i + 3)
            end = _read_balanced(code, j, "{", "}")
            children, _ = _parse_seq(code[j + 1:end - 1], 0,
                                     _line_at(code, j + 1, line0))
            catches = []
            j = end
            while True:
                j2 = _skip_ws(code, j)
                if not code[j2:].startswith("catch"):
                    break
                p = code.find("(", j2)
                pe = _read_balanced(code, p, "(", ")")
                b = _skip_ws(code, pe)
                be = _read_balanced(code, b, "{", "}")
                cb, _ = _parse_seq(code[b + 1:be - 1], 0,
                                   _line_at(code, b + 1, line0))
                catches.append(cb)
                j = be
            return Stmt("try", line, children=children,
                        catches=catches), j
        if word in ("return", "throw"):
            end = _read_simple(code, i)
            return Stmt(word, line,
                        text=code[i + len(word):end].strip(" ;")), end
        if word in ("break", "continue"):
            end = _read_simple(code, i)
            return None, end
        if word in ("case", "default", "else"):
            # labels (and a stray else) — skip to the colon / keyword
            col = code.find(":", i)
            if word == "else" or col < 0:
                end = i + len(word)
                return None, end
            return None, col + 1
    end = _read_simple(code, i)
    return Stmt("stmt", line, text=code[i:end].rstrip(";")), end


def _parse_stmt_or_block(code, i, line0):
    i = _skip_ws(code, i)
    if i >= len(code):
        return None, i
    return _parse_one(code, i, line0)


# ---------------------------------------------------------------------------
# Path-sensitive analysis


OWNED, RELEASED, ESCAPED = "owned", "released", "escaped"

ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/&|^%])=(?!=)")
DECL_BRACE_RE = re.compile(
    r"^\s*((?:[A-Za-z_][\w:<>,\s]*[\s&*])+)([A-Za-z_]\w*)\s*\{")
TARGET_RE = re.compile(
    r"([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*\w+|\s*\[[^\]]*\])*)\s*$")
VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*$")


class Var:
    __slots__ = ("state", "line", "kind", "rel_off", "rel_line")

    def __init__(self, state, line, kind):
        self.state = state
        self.line = line
        self.kind = kind       # 'var' (producer result) or 'acq'
        self.rel_off = -1
        self.rel_line = 0

    def clone(self):
        v = Var(self.state, self.line, self.kind)
        v.rel_off = self.rel_off
        v.rel_line = self.rel_line
        return v


def clone_state(state):
    return {k: v.clone() for k, v in state.items()}


class FunctionAnalysis:
    def __init__(self, path, raw_lines, kb, findings):
        self.path = path
        self.raw_lines = raw_lines
        self.kb = kb
        self.findings = findings
        self.paths = 0
        self.reported = set()

    # -- findings ---------------------------------------------------------

    def report(self, line, rule, message):
        if (line, rule) in self.reported:
            return
        self.reported.add((line, rule))
        if rule != "waiver-missing-reason" and \
                _waived_at(self.raw_lines, line):
            return
        self.findings.append(Finding(self.path, line, rule, message))

    # -- call scanning ----------------------------------------------------

    def scan_calls(self, text):
        calls = []
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", text):
            name = m.group(1)
            if name in KEYWORDS or name.startswith("HICAMP_"):
                continue
            span = balanced_span(text, m.end() - 1)
            if span is None:
                continue
            inner = text[m.end():span - 1]
            args = [] if not inner.strip() else split_top_commas(inner)
            calls.append({"name": name, "start": m.start(),
                          "open": m.end() - 1, "end": span,
                          "args": args, "args_off": m.end()})
        for c in calls:
            c["enclosed"] = any(o is not c and
                                o["open"] < c["start"] < o["end"]
                                for o in calls)
        return calls

    def is_producer_use(self, name, args):
        """retain-family calls act like producers when their value is
        used; bare in statement position they are raw acquires."""
        return name in self.kb.producers or \
            (name in self.kb.acquirers and
             name not in self.kb.try_acquirers) or \
            (name in ("release", "disown") and not args)

    # -- per-statement event engine --------------------------------------

    def process_stmt(self, text, line, state, in_return=False,
                     in_cond=False):
        """Apply the ownership events of one statement text to state."""
        calls = self.scan_calls(text)

        # assignment / brace-init target
        eq_off, target, target_suffix, decl_type = -1, None, "", ""
        depth = 0
        for i, ch in enumerate(text):
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == "=" and depth == 0 and \
                    ASSIGN_RE.match(text, i):
                eq_off = i
                break
        if eq_off >= 0:
            lhs = text[:eq_off]
            tm = TARGET_RE.search(lhs.strip())
            if tm:
                target, target_suffix = tm.group(1), tm.group(2)
                decl_type = lhs.strip()[:tm.start()]
        else:
            dm = DECL_BRACE_RE.match(text)
            if dm and not any(c["open"] == dm.end() - 1 for c in calls):
                decl_type, target = dm.group(1), dm.group(2)
                eq_off = dm.end() - 1

        rhs_producer = False
        events = []  # (offset, kind, payload)

        for c in calls:
            name, args = c["name"], c["args"]
            in_rhs = eq_off >= 0 and c["start"] > eq_off

            # releases: a release-family name applied to an argument
            if name in self.kb.releasers and args and \
                    not self.is_producer_use(name, args):
                b = base_id(args[0])
                if b:
                    events.append((c["start"], "release", (b, c)))
                continue
            if name == "reset" and not args:
                rm = re.search(r"([A-Za-z_]\w*)\s*\.\s*reset\s*\($",
                               text[:c["open"] + 1])
                if rm:
                    events.append((c["start"], "release",
                                   (rm.group(1), c)))
                continue

            # producers (including retain-as-value and transfers);
            # a producer can *also* consume (makeNode, internLine),
            # so fall through to the consumer scan below
            if self.is_producer_use(name, args):
                transfer = name in ("release", "disown") and not args
                if c["enclosed"] or in_return or transfer:
                    pass  # handed to a callee / caller / structure
                elif in_rhs:
                    rhs_producer = True
                elif VOID_CAST_RE.search(text[:c["start"]]):
                    pass  # explicit discard, compile-time visible
                elif name in self.kb.acquirers:
                    # bare retain/incRef: the argument gained a
                    # reference someone must now release
                    b = base_id(args[0]) if args else None
                    if b:
                        events.append((c["start"], "acquire", b))
                    continue  # the acquire IS the arg event
                else:
                    self.report(
                        line, "discarded-ref",
                        f"result of '{name}' owns a reference and is "
                        "discarded; assign, transfer or release it")
            elif name in self.kb.try_acquirers:
                # bare try-acquire in statement position: result
                # ignored, but a success still took a reference
                # (condition position is handled branch-sensitively
                # by _apply_cond)
                if not in_cond and eq_off < 0 and not c["enclosed"] \
                        and not in_return:
                    b = base_id(args[0]) if args else None
                    if b:
                        events.append((c["start"], "acquire", b))
                continue

            # consumers: annotated argument positions take ownership
            idxs = self.kb.consumer_indices.get(name)
            if idxs:
                for i in idxs:
                    if i < len(args):
                        b = base_id(args[i])
                        if b:
                            events.append((c["start"], "consume", b))
                other = [k for k in range(len(args)) if k not in idxs]
            else:
                other = range(len(args))
            # any argument of any call discharges obligations: an
            # unknown callee may have taken the reference over
            if not c["enclosed"]:
                for k in other:
                    b = base_id(args[k])
                    if b:
                        events.append((c["start"], "soft", b))

        events.sort(key=lambda e: e[0])
        released_here = set()
        for off, kind, payload in events:
            if kind == "release":
                b, c = payload
                released_here.add(b)
                self._release(b, off, line, state)
            elif kind == "acquire":
                state[f"acq:{payload}:{line}:{off}"] = \
                    Var(OWNED, line, "acq")
            elif kind == "consume":
                self._consume(payload, line, state)
            elif kind == "soft":
                self._soft(payload, line, state)

        # assignment effect, after call events of the RHS.  Only
        # reference-carrying declared types are tracked: a name
        # collision on a producer (another class's snapshot()) must
        # not turn an unrelated local into a tracked reference.
        if target:
            v = state.get(target)
            ref_type = not decl_type.strip() or re.search(
                r"\b(Plid|Entry|SegDesc|auto)\b", decl_type)
            if rhs_producer and ref_type and \
                    not any(t in decl_type for t in RAII_TYPES) and \
                    not target.endswith("_"):
                if v is not None and v.state == OWNED and \
                        not target_suffix and v.kind == "var":
                    self.report(
                        line, "leak",
                        f"'{target}' still owns the reference "
                        f"acquired at line {v.line} when it is "
                        "overwritten")
                state[target] = Var(OWNED, line, "var")
            elif rhs_producer and target.endswith("_"):
                pass  # escaped into object state
            # tracked vars mentioned on the RHS moved their ownership
            if eq_off >= 0:
                rhs = text[eq_off + 1:]
                for k, vv in list(state.items()):
                    nmv = k if vv.kind == "var" else k.split(":")[1]
                    if nmv != target and vv.state == OWNED and \
                            re.search(rf"\b{re.escape(nmv)}\b", rhs):
                        vv.state = ESCAPED

        # use-after-release: released locals mentioned again (the
        # statement that performed a release is the release itself,
        # not a stale read — double-release is reported separately)
        for k, vv in state.items():
            if vv.kind != "var" or vv.state != RELEASED or \
                    k in released_here:
                continue
            for m in re.finditer(rf"\b{re.escape(k)}\b", text):
                if vv.rel_line == line and m.start() <= vv.rel_off:
                    continue
                if target == k and eq_off >= 0 and m.start() < eq_off:
                    continue  # re-assignment target, not a read
                self.report(
                    line, "use-after-release",
                    f"'{k}' is read after its reference was released "
                    f"at line {vv.rel_line}")
                break

    def _release(self, b, off, line, state):
        v = state.get(b)
        if v is not None and v.kind == "var":
            if v.state == OWNED:
                v.state = RELEASED
                v.rel_off = off
                v.rel_line = line
            elif v.state == RELEASED:
                self.report(
                    line, "double-release",
                    f"'{b}' was already released at line "
                    f"{v.rel_line} on this path")
            return
        # otherwise discharge the most recent matching acquire
        for k in reversed(list(state.keys())):
            vv = state[k]
            if vv.kind == "acq" and vv.state == OWNED and \
                    k.split(":")[1] == b:
                vv.state = RELEASED
                return

    def _consume(self, b, line, state):
        for k, vv in state.items():
            nmv = k if vv.kind == "var" else k.split(":")[1]
            if nmv != b:
                continue
            if vv.state == OWNED:
                vv.state = ESCAPED
            elif vv.state == RELEASED and vv.kind == "var":
                self.report(
                    line, "use-after-release",
                    f"'{b}' is handed to a consuming call after its "
                    f"reference was released at line {vv.rel_line}")

    def _soft(self, b, line, state):
        for k, vv in state.items():
            nmv = k if vv.kind == "var" else k.split(":")[1]
            if nmv == b and vv.state == OWNED:
                vv.state = ESCAPED

    # -- path walking -----------------------------------------------------

    def end_path(self, state, terminal, line):
        for k, vv in state.items():
            if vv.state != OWNED:
                continue
            name = k if vv.kind == "var" else k.split(":")[1]
            if terminal == "throw":
                rule = "leak-on-throw"
                how = "the throw"
            elif terminal == "return":
                rule = "leak" if vv.kind == "var" else \
                    "unbalanced-acquire"
                how = f"the return at line {line}"
            else:
                rule = "leak" if vv.kind == "var" else \
                    "unbalanced-acquire"
                how = "the end of the function"
            what = "the reference acquired" if vv.kind == "acq" else \
                "an owned reference acquired"
            self.report(
                vv.line, rule,
                f"'{name}' still owns {what} at line {vv.line} when "
                f"the path reaches {how}; release or transfer it "
                "(or waive with // hicamp-refcount: waive(reason))")

    def fork(self):
        self.paths += 1
        return self.paths <= kPathCap

    def walk_seq(self, nodes, idx, state):
        """Walk nodes[idx:] with state; returns the list of surviving
        states (paths that did not terminate)."""
        while idx < len(nodes):
            node = nodes[idx]
            idx += 1
            k = node.kind
            if k == "stmt":
                self.process_stmt(node.text, node.line, state)
            elif k == "return":
                self.process_stmt(node.text, node.line, state,
                                  in_return=True)
                self._escape_mentions(node.text, state)
                self.end_path(state, "return", node.line)
                return []
            elif k == "throw":
                self.process_stmt(node.text, node.line, state)
                self._escape_mentions(node.text, state)
                self.end_path(state, "throw", node.line)
                return []
            elif k == "block":
                if node.cond:
                    self.process_stmt(node.cond, node.line, state,
                                      in_cond=True)
                survivors = self.walk_seq(node.children, 0, state)
                out = []
                for s in survivors:
                    out.extend(self.walk_seq(nodes, idx, s))
                return out
            elif k == "if":
                then_state = state
                else_state = clone_state(state) if self.fork() else None
                self._apply_cond(node, then_state, else_state)
                survivors = self.walk_seq(node.children, 0, then_state)
                if else_state is not None:
                    if node.orelse:
                        survivors += self.walk_seq(node.orelse, 0,
                                                   else_state)
                    else:
                        survivors.append(else_state)
                out = []
                for s in survivors:
                    out.extend(self.walk_seq(nodes, idx, s))
                return out
            elif k == "loop":
                # Loops are analyzed as executing exactly once: the
                # zero-iteration path would report ownership moved by
                # the (always-taken in practice) body as leaked, and
                # a second iteration adds no new ownership facts to a
                # path-local analysis.
                self._apply_cond(node, state, None)
                survivors = self.walk_seq(node.children, 0, state)
                out = []
                for s in survivors:
                    out.extend(self.walk_seq(nodes, idx, s))
                return out
            elif k == "try":
                catch_states = [clone_state(state)
                                for _ in node.catches if self.fork()]
                survivors = self.walk_seq(node.children, 0, state)
                for cs, cb in zip(catch_states, node.catches):
                    survivors += self.walk_seq(cb, 0, cs)
                out = []
                for s in survivors:
                    out.extend(self.walk_seq(nodes, idx, s))
                return out
        return [state]

    def _apply_cond(self, node, succ_state, fail_state):
        """Condition events; try-acquires are branch-sensitive — only
        the success branch owes the acquired reference."""
        cond, line = node.cond, node.line
        calls = self.scan_calls(cond)
        tries = [c for c in calls if c["name"] in self.kb.try_acquirers]
        self.process_stmt(cond, line, succ_state, in_cond=True)
        if fail_state is not None:
            self.process_stmt(cond, line, fail_state, in_cond=True)
        for c in tries:
            negated = bool(re.search(r"!\s*[\w.\->:]*$",
                                     cond[:c["start"]]))
            b = base_id(c["args"][0]) if c["args"] else None
            if not b:
                continue
            tgt = fail_state if negated else succ_state
            if tgt is not None:
                tgt[f"acq:{b}:{line}:{c['start']}"] = \
                    Var(OWNED, line, "acq")

    def _escape_mentions(self, text, state):
        for k, vv in state.items():
            name = k if vv.kind == "var" else k.split(":")[1]
            if vv.state == OWNED and \
                    re.search(rf"\b{re.escape(name)}\b", text):
                vv.state = ESCAPED
            elif vv.state == RELEASED and vv.kind == "var" and \
                    re.search(rf"\b{re.escape(name)}\b", text):
                self.report(
                    vv.rel_line, "use-after-release",
                    f"'{name}' is returned/thrown after its "
                    f"reference was released at line {vv.rel_line}")


# ---------------------------------------------------------------------------
# File driver


def relevant(body):
    """Cheap gate: only bodies that mention the vocabulary at all."""
    return re.search(
        r"\b(lookup|internLine|makeLeaf|makeNode|build\w*|setWord|"
        r"snapshot|lift|boxSegment|incRef\w*|decRef|retain|tryRetain|"
        r"addRef|release\w*|retire|freeLine|adopt|intern|disown)\s*\(",
        body) is not None


def check_file(path, kb, findings):
    raw = open(path, encoding="utf-8").read()
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)

    # reasonless waivers are findings wherever they sit
    for i, l in enumerate(raw_lines):
        if WAIVER_EMPTY_RE.search(l):
            findings.append(Finding(
                path, i + 1, "waiver-missing-reason",
                "waiver has no rationale; write "
                "// hicamp-refcount: waive(<why this is sound>)"))

    funcs = functions_libclang(path, code) or functions_tokens(code)
    for start_line, head, body in funcs:
        if "HICAMP_REF_PRIMITIVE" in head:
            continue
        if "HICAMP_ACQUIRES_REF" in head or \
                "HICAMP_RELEASES_REF" in head:
            # one-sided by contract: the declared imbalance IS the
            # function's job (retain/release wrapper bodies)
            continue
        fa = FunctionAnalysis(path, raw_lines, kb, findings)
        name, params = head_function(head)

        # consumes-param-not-consumed: declaration promised to take
        # the reference over; a body never touching the parameter in a
        # discharging position cannot have kept that promise.
        consumed = set()
        if "HICAMP_CONSUMES_REF" in head:
            for m in re.finditer(
                    r"HICAMP_CONSUMES_REF\b([^,()]*(?:\([^)]*\))?[^,()]*)",
                    head):
                pn = param_name(m.group(1))
                if pn and pn in params:
                    consumed.add(pn)
        if name in kb.consumed_params:
            consumed |= {p for p in kb.consumed_params[name]
                         if p in params}
        for pn in consumed:
            if not re.search(rf"\b{re.escape(pn)}\b", body):
                fa.report(
                    start_line, "consumes-param-not-consumed",
                    f"parameter '{pn}' is declared "
                    "HICAMP_CONSUMES_REF but the body never releases, "
                    "forwards or stores it; the taken-over reference "
                    "has nowhere to go")

        if not relevant(body):
            continue
        tree = parse_stmts(body, start_line)
        survivors = fa.walk_seq(tree, 0, {})
        for s in survivors:
            fa.end_path(s, "end",
                        start_line + body.count("\n"))


def default_targets(root):
    targets = []
    top = os.path.join(root, "src")
    if os.path.isdir(top):
        for dirpath, _, files in os.walk(top):
            for f in sorted(files):
                if f.endswith((".hh", ".cc")):
                    targets.append(os.path.join(dirpath, f))
    return targets


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="HICAMP refcount-ownership checker")
    ap.add_argument("files", nargs="*",
                    help="files to check (default: src/ under --root)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        help="repository root (annotation KB is harvested from its "
             "src/ tree)")
    ap.add_argument("--no-harvest", action="store_true",
                    help="seed KB only (hermetic fixture runs)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    kb = KB()
    if not args.no_harvest:
        kb.harvest(root)

    files = [os.path.abspath(f) for f in args.files] or \
        default_targets(root)
    findings = []
    seen = set()
    for path in files:
        if not os.path.isfile(path):
            print(f"refcount_check: no such file: {path}",
                  file=sys.stderr)
            return 2
        check_file(path, kb, findings)

    uniq = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if f.key() in seen:
            continue
        seen.add(f.key())
        uniq.append(f)
    for f in uniq:
        print(f)
    print(f"refcount_check: {len(uniq)} finding(s) in "
          f"{len(files)} file(s)")
    return 1 if uniq else 0


if __name__ == "__main__":
    sys.exit(main())
