// Fixture: limbo retirement consumes the store's reference (§12) —
// freeLine parks the line in limbo, but from this path's point of
// view the reference is gone; handing the same PLID to the epoch
// domain's defer afterwards is a second hand-off of a dead reference,
// even though the line is still observable until grace expiry.
// Expect: use-after-release
namespace hicamp {
void
retireThenDefer(LineStore &store, EpochManager &ep, const Line &l)
{
    Plid p = store.lookup(l);
    store.freeLine(p); // retire: store's reference consumed here
    ep.defer(&LineStore::limboFreeHome, &store, p); // dead hand-off
}
} // namespace hicamp
