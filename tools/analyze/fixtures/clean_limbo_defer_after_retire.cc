// Fixture twin: each path hands the reference over exactly once.
// Retiring (freeLine) consumes the store's reference and internally
// parks the line in limbo; deferring is the *alternative* hand-off,
// transferring ownership to the epoch domain for grace-expiry
// reclamation — either is balanced alone.
namespace hicamp {
void
retireOnly(LineStore &store, const Line &l)
{
    Plid p = store.lookup(l);
    store.freeLine(p); // consumed: limbo until grace expiry
}

void
deferOnly(LineStore &store, EpochManager &ep, const Line &l)
{
    Plid p = store.lookup(l);
    ep.defer(&LineStore::limboFreeHome, &store, p); // domain owns it
}
} // namespace hicamp
