// Fixture: tryRetain is branch-sensitive — only the success branch
// owes the release, and here it never pays.
// Expect: unbalanced-acquire
namespace hicamp {
bool
tryRetainLeak(Memory &mem, Plid p)
{
    if (mem.tryRetain(p)) {
        return true; // the retained reference is never released
    }
    return false;
}
} // namespace hicamp
