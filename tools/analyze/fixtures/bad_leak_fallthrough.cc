// Fixture: owned reference falls off the end of the function.
// Expect: leak
namespace hicamp {
void
leakFallthrough(Memory &mem, const Line &l)
{
    Plid p = mem.internLine(l);
    (void)p;
}
} // namespace hicamp
