// Clean twin of bad_discarded_ref: the result is adopted and
// balanced by the RAII handle.
namespace hicamp {
void
adoptLookup(Memory &mem, const Line &l)
{
    PlidRef p = PlidRef::adopt(mem, mem.lookup(l));
    publish(p.get());
}
} // namespace hicamp
