// Fixture: consume-on-failure violated — the owned reference is
// dropped when the path unwinds.  Expect: leak-on-throw
namespace hicamp {
void
leakOnThrow(Memory &mem, const Line &l, bool pressure)
{
    Plid p = mem.lookup(l);
    if (pressure)
        throw MemPressureError(FaultKind::LineSpace, "fixture");
    mem.decRef(p);
}
} // namespace hicamp
