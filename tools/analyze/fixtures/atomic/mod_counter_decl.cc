// Companion module: declares (and legitimately bumps) the counter.
namespace hicamp {
struct TickSource {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> ticks_{0};
};
void
tick(TickSource &t)
{
    t.ticks_.fetch_add(1, std::memory_order_relaxed);
}
} // namespace hicamp
