// Clean twin: the fence documents the protocol it belongs to.
namespace hicamp {
void
retirementBarrier()
{
    // hicamp-atomic: waive(retirement fence: orders the caller's
    // unpublish stores before the epoch tag read that follows)
    std::atomic_thread_fence(std::memory_order_seq_cst);
}
} // namespace hicamp
