// Clean twin: the field is declared with a role in the same file.
namespace hicamp {
struct G {
    HICAMP_ATOMIC_COUNTER std::atomic<int> g_known{0};
};
int
readKnown(const G &g)
{
    return g.g_known.load(std::memory_order_relaxed);
}
} // namespace hicamp
