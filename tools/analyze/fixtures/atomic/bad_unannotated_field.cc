// Fixture: an atomic field with no role annotation.
// Expect: unannotated-atomic-field
namespace hicamp {
struct Stats {
    std::atomic<unsigned long> hits{0};
};
} // namespace hicamp
