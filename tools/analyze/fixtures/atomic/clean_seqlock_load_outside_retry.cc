// Clean twin: the load sits inside the standard retry loop.
namespace hicamp {
struct Desc {
    SeqCount seq;
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned long> root{0};
};
unsigned long
readRoot(const Desc &d)
{
    for (;;) {
        unsigned s1 = d.seq.readBegin();
        unsigned long r = d.root.load(std::memory_order_relaxed);
        if (d.seq.validate(s1))
            return r;
    }
}
} // namespace hicamp
