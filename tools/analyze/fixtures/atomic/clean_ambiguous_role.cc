// Clean twin: distinct names for distinct roles.
namespace hicamp {
struct A {
    HICAMP_ATOMIC_COUNTER std::atomic<int> count_{0};
};
struct B {
    HICAMP_ATOMIC_PUBLISH std::atomic<int> ready_{0};
};
} // namespace hicamp
