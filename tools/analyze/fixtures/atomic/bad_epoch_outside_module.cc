// Fixture: an epoch word touched outside its declaring module — the
// pin protocol lives there only.
// With: mod_epoch_decl.cc
// Expect: epoch-outside-module
namespace hicamp {
unsigned long
stealEpoch(const Domain &d)
{
    return d.globalEpoch_.load(std::memory_order_seq_cst);
}
} // namespace hicamp
