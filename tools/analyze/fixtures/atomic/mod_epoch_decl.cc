// Companion module: owns the epoch word and its protocol.
namespace hicamp {
struct Domain {
    HICAMP_ATOMIC_EPOCH std::atomic<unsigned long> globalEpoch_{1};
};
unsigned long
readEpoch(const Domain &d)
{
    return d.globalEpoch_.load(std::memory_order_seq_cst);
}
} // namespace hicamp
