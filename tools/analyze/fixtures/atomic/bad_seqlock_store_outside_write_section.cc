// Fixture: seqlock-published field stored without entering the
// write section — readers cannot detect the torn update.
// Expect: seqlock-store-outside-write-section
namespace hicamp {
struct Desc {
    SeqCount seq;
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned long> root{0};
};
void
setRoot(Desc &d, unsigned long r)
{
    d.root.store(r, std::memory_order_relaxed);
}
} // namespace hicamp
