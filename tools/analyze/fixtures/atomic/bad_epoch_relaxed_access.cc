// Fixture: the global epoch word read relaxed inside the pin
// protocol's own module — the stable-pin handshake needs stronger
// orders.
// Expect: epoch-relaxed-access
namespace hicamp {
struct Domain {
    HICAMP_ATOMIC_EPOCH std::atomic<unsigned long> global{1};
};
unsigned long
currentEpoch(const Domain &d)
{
    return d.global.load(std::memory_order_relaxed);
}
} // namespace hicamp
