// Fixture: a release store whose field is never acquire-loaded —
// either the release is dead weight or a reader misses its acquire.
// Expect: publish-unpaired-release
namespace hicamp {
struct Gate {
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> open{false};
};
void
openGate(Gate &g)
{
    g.open.store(true, std::memory_order_release);
}
} // namespace hicamp
