// Clean twin: the store sits between writeBegin and writeEnd.
namespace hicamp {
struct Desc {
    SeqCount seq;
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned long> root{0};
};
void
setRoot(Desc &d, unsigned long r)
{
    d.seq.writeBegin();
    d.root.store(r, std::memory_order_relaxed);
    d.seq.writeEnd();
}
} // namespace hicamp
