// Clean twin: release publication paired with an acquire reader.
namespace hicamp {
struct Box {
    int payload = 0;
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> ready{false};
};
void
publishBox(Box &b, int v)
{
    b.payload = v;
    b.ready.store(true, std::memory_order_release);
}
bool
readBox(const Box &b)
{
    return b.ready.load(std::memory_order_acquire);
}
} // namespace hicamp
