// Fixture: one name declared under two roles — names are the unit of
// classification.
// Expect: ambiguous-role
namespace hicamp {
struct A {
    HICAMP_ATOMIC_COUNTER std::atomic<int> n_{0};
};
struct B {
    HICAMP_ATOMIC_PUBLISH std::atomic<int> n_{0};
};
} // namespace hicamp
