// Clean twin: the cross-module read documents its quiescent point.
// With: mod_counter_decl.cc
namespace hicamp {
unsigned long
peekTicks(const TickSource &t)
{
    // hicamp-atomic: waive(end-of-phase snapshot: all worker threads
    // joined before this read, no tick can be in flight)
    return t.ticks_.load(std::memory_order_relaxed);
}
} // namespace hicamp
