// Fixture: the failure order is stronger than the success order.
// Expect: claim-cas-failure-exceeds-success
namespace hicamp {
struct Slot {
    HICAMP_ATOMIC_CLAIM_CAS std::atomic<unsigned> owner{0};
};
bool
claim(Slot &s, unsigned me)
{
    unsigned expect = 0;
    return s.owner.compare_exchange_strong(
        expect, me, std::memory_order_relaxed,
        std::memory_order_acquire);
}
} // namespace hicamp
