// Fixture: counter read with acquire — a counter carries no
// publication; acquire here implies a protocol the role forbids.
// Expect: counter-nonrelaxed-load
namespace hicamp {
struct Stats {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> hits{0};
};
unsigned long
hitCount(const Stats &s)
{
    return s.hits.load(std::memory_order_acquire);
}
} // namespace hicamp
