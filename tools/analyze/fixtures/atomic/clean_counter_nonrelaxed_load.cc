// Clean twin: relaxed load in the declaring module.
namespace hicamp {
struct Stats {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> hits{0};
};
unsigned long
hitCount(const Stats &s)
{
    return s.hits.load(std::memory_order_relaxed);
}
} // namespace hicamp
