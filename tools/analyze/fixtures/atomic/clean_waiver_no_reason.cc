// Clean twin: the waiver carries its rationale.
namespace hicamp {
struct Box {
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> ready{false};
};
void
initBox(Box &b)
{
    // hicamp-atomic: waive(init path: runs before any reader thread
    // is spawned; publication happens later in publish())
    b.ready.store(false, std::memory_order_relaxed);
}
void
publish(Box &b)
{
    b.ready.store(true, std::memory_order_release);
}
bool
readBox(const Box &b)
{
    return b.ready.load(std::memory_order_acquire);
}
} // namespace hicamp
