// Fixture: seqlock-published field read with no readBegin/validate
// retry loop around it — a torn read is silent.
// Expect: seqlock-load-outside-retry
namespace hicamp {
struct Desc {
    SeqCount seq;
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned long> root{0};
};
unsigned long
peekRoot(const Desc &d)
{
    return d.root.load(std::memory_order_relaxed);
}
} // namespace hicamp
