// Fixture: seqlock-published field accessed with acquire inside the
// retry loop — the SeqCount fences carry the ordering; per-field
// acquire hides the protocol.
// Expect: seqlock-nonrelaxed-access
namespace hicamp {
struct Desc {
    SeqCount seq;
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned long> root{0};
};
unsigned long
readRoot(const Desc &d)
{
    for (;;) {
        unsigned s1 = d.seq.readBegin();
        unsigned long r = d.root.load(std::memory_order_acquire);
        if (d.seq.validate(s1))
            return r;
    }
}
} // namespace hicamp
