// Clean twin: acquire on the claim, release on the clear.
namespace hicamp {
struct Lock {
    HICAMP_ATOMIC_FLAG std::atomic_flag lk = ATOMIC_FLAG_INIT;
};
void
lock(Lock &l)
{
    while (l.lk.test_and_set(std::memory_order_acquire)) {
    }
}
void
unlock(Lock &l)
{
    l.lk.clear(std::memory_order_release);
}
} // namespace hicamp
