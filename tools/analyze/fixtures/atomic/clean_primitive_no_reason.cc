// Clean twin: the primitive marker says which protocol it defines.
namespace hicamp {
struct Desc {
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned> v_{0};
};
// hicamp-atomic: primitive(defines the write-side entry of this
// fixture's sequence protocol; writers are externally serialized)
void
bump(Desc &d)
{
    d.v_.store(1, std::memory_order_relaxed);
}
} // namespace hicamp
