// Fixture: a failed CAS stored nothing, so a release failure order
// is meaningless (and ill-formed per the C++ memory model pre-C++17
// relaxation rules the codebase targets).
// Expect: claim-cas-release-on-failure
namespace hicamp {
struct Slot {
    HICAMP_ATOMIC_CLAIM_CAS std::atomic<unsigned> owner{0};
};
bool
claim(Slot &s, unsigned me)
{
    unsigned expect = 0;
    return s.owner.compare_exchange_strong(
        expect, me, std::memory_order_acq_rel,
        std::memory_order_release);
}
} // namespace hicamp
