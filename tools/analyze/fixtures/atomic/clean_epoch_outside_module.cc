// Clean twin: foreign modules go through the owning module's API
// instead of touching the epoch word.
// With: mod_epoch_decl.cc
namespace hicamp {
unsigned long
askEpoch(const Domain &d)
{
    return readEpoch(d);
}
} // namespace hicamp
