// Fixture: a statistics counter bumped with acq_rel — counters are
// relaxed-only; stronger orders suggest the field is mis-roled.
// Expect: counter-nonrelaxed-rmw
namespace hicamp {
struct Stats {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> hits{0};
};
void
recordHit(Stats &s)
{
    s.hits.fetch_add(1, std::memory_order_acq_rel);
}
} // namespace hicamp
