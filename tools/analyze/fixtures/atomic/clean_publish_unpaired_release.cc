// Clean twin: the acquire-side reader closes the pairing.
namespace hicamp {
struct Gate {
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> open{false};
};
void
openGate(Gate &g)
{
    g.open.store(true, std::memory_order_release);
}
bool
gateOpen(const Gate &g)
{
    return g.open.load(std::memory_order_acquire);
}
} // namespace hicamp
