// Clean twin: the field declares its role.
namespace hicamp {
struct Stats {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> hits{0};
};
} // namespace hicamp
