// Fixture: a bare fence with no justification — fences belong to
// role primitives.
// Expect: bare-fence
namespace hicamp {
void
mysteryBarrier()
{
    std::atomic_thread_fence(std::memory_order_acquire);
}
} // namespace hicamp
