// Clean twin: relaxed bump, relaxed same-module read.
namespace hicamp {
struct Stats {
    HICAMP_ATOMIC_COUNTER std::atomic<unsigned long> hits{0};
};
void
recordHit(Stats &s)
{
    s.hits.fetch_add(1, std::memory_order_relaxed);
}
unsigned long
hitCount(const Stats &s)
{
    return s.hits.load(std::memory_order_relaxed);
}
} // namespace hicamp
