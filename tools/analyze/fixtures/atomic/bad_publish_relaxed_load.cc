// Fixture: the lock-free reader loads the publication flag relaxed,
// so the payload read below it is unordered against the publish.
// Expect: publish-relaxed-load
namespace hicamp {
struct Box {
    int payload = 0;
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> ready{false};
};
void
publishBox(Box &b, int v)
{
    b.payload = v;
    b.ready.store(true, std::memory_order_release);
}
int
readBox(const Box &b)
{
    if (b.ready.load(std::memory_order_relaxed))
        return b.payload;
    return -1;
}
} // namespace hicamp
