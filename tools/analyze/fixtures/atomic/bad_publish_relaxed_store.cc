// Fixture: data published through a flag, but the store is relaxed —
// a reader that sees the flag may still miss the payload.
// Expect: publish-relaxed-store
namespace hicamp {
struct Box {
    int payload = 0;
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> ready{false};
};
void
publishBox(Box &b, int v)
{
    b.payload = v;
    b.ready.store(true, std::memory_order_relaxed);
}
bool
readBox(const Box &b)
{
    return b.ready.load(std::memory_order_acquire);
}
} // namespace hicamp
