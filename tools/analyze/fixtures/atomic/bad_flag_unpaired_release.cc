// Fixture: the flag is released but no acquire side exists anywhere.
// Expect: flag-unpaired-release
namespace hicamp {
struct Lock {
    HICAMP_ATOMIC_FLAG std::atomic_flag lk = ATOMIC_FLAG_INIT;
};
void
unlock(Lock &l)
{
    l.lk.clear(std::memory_order_release);
}
} // namespace hicamp
