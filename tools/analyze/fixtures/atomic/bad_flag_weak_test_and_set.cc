// Fixture: a lock-style flag acquired with a relaxed test_and_set —
// the critical section's loads can float above the lock.
// Expect: flag-weak-test-and-set
namespace hicamp {
struct Lock {
    HICAMP_ATOMIC_FLAG std::atomic_flag lk = ATOMIC_FLAG_INIT;
};
void
lock(Lock &l)
{
    while (l.lk.test_and_set(std::memory_order_relaxed)) {
    }
}
void
unlock(Lock &l)
{
    l.lk.clear(std::memory_order_release);
}
} // namespace hicamp
