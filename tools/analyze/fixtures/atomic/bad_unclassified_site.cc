// Fixture: an atomic operation on an object the checker cannot
// resolve to any role-annotated field.
// Expect: unclassified-site
namespace hicamp {
int
readMystery()
{
    return g_mystery.load(std::memory_order_relaxed);
}
} // namespace hicamp
