// Fixture: a primitive marker with no rationale.
// Expect: primitive-missing-rationale
namespace hicamp {
struct Desc {
    HICAMP_ATOMIC_SEQLOCK std::atomic<unsigned> v_{0};
};
// hicamp-atomic: primitive()
void
bump(Desc &d)
{
    d.v_.store(1, std::memory_order_relaxed);
}
} // namespace hicamp
