// Fixture: a counter declared in another module read here without a
// documented quiescent point.
// With: mod_counter_decl.cc
// Expect: counter-load-outside-snapshot
namespace hicamp {
unsigned long
peekTicks(const TickSource &t)
{
    return t.ticks_.load(std::memory_order_relaxed);
}
} // namespace hicamp
