// Clean twin: seq_cst read, as the stable-pin handshake requires.
namespace hicamp {
struct Domain {
    HICAMP_ATOMIC_EPOCH std::atomic<unsigned long> global{1};
};
unsigned long
currentEpoch(const Domain &d)
{
    return d.global.load(std::memory_order_seq_cst);
}
} // namespace hicamp
