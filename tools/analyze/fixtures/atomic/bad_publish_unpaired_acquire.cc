// Fixture: an acquire load whose field is never release-stored; the
// reader synchronizes with nothing.
// Expect: publish-unpaired-acquire
namespace hicamp {
struct Gate {
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> open{false};
};
bool
gateOpen(const Gate &g)
{
    return g.open.load(std::memory_order_acquire);
}
} // namespace hicamp
