// Clean twin: a lock-serialized re-check may stay relaxed with a
// reasoned waiver naming the serializing lock.
namespace hicamp {
struct Box {
    int payload = 0;
    HICAMP_ATOMIC_PUBLISH std::atomic<bool> ready{false};
};
void
publishBox(Box &b, int v)
{
    b.payload = v;
    b.ready.store(true, std::memory_order_release);
}
int
readBoxLocked(const Box &b)
{
    // hicamp-atomic: waive(boxMutex_ held: serialized with the
    // publishing store, no ordering needed)
    if (b.ready.load(std::memory_order_relaxed))
        return b.payload;
    return -1;
}
bool
readBox(const Box &b)
{
    return b.ready.load(std::memory_order_acquire);
}
} // namespace hicamp
