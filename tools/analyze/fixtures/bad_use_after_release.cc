// Fixture: the PLID is read after its reference was dropped — the
// line may already be reclaimed.  Expect: use-after-release
namespace hicamp {
void
useAfterRelease(Memory &mem, const Line &l)
{
    Plid p = mem.lookup(l);
    mem.decRef(p);
    publish(p); // stale read
}
} // namespace hicamp
