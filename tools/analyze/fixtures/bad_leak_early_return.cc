// Fixture: owned lookup result dropped on an early return.
// Expect: leak
namespace hicamp {
void
leakEarlyReturn(Memory &mem, const Line &l, bool flag)
{
    Plid p = mem.lookup(l);
    if (flag)
        return; // p still owns its reference here
    mem.decRef(p);
}
} // namespace hicamp
