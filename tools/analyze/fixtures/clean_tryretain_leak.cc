// Clean twin of bad_tryretain_leak: success branch releases; the
// failure branch owes nothing.
namespace hicamp {
bool
tryRetainBalanced(Memory &mem, Plid p)
{
    if (!mem.tryRetain(p))
        return false;
    publish(p);
    mem.decRef(p);
    return true;
}
} // namespace hicamp
