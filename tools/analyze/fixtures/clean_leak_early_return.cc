// Clean twin of bad_leak_early_return: every path releases.
namespace hicamp {
void
noLeakEarlyReturn(Memory &mem, const Line &l, bool flag)
{
    Plid p = mem.lookup(l);
    if (flag) {
        mem.decRef(p);
        return;
    }
    mem.decRef(p);
}
} // namespace hicamp
