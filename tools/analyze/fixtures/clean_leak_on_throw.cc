// Clean twin of bad_leak_on_throw: release before unwinding.
namespace hicamp {
void
releaseBeforeThrow(Memory &mem, const Line &l, bool pressure)
{
    Plid p = mem.lookup(l);
    if (pressure) {
        mem.decRef(p);
        throw MemPressureError(FaultKind::LineSpace, "fixture");
    }
    mem.decRef(p);
}
} // namespace hicamp
