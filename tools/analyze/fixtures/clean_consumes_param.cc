// Clean twin of bad_consumes_param: the consumed parameter is
// released, honoring the contract on every path.
namespace hicamp {
void
consumeRef(Memory &mem, HICAMP_CONSUMES_REF Plid victim, bool log)
{
    if (log)
        note(log);
    mem.decRef(victim);
}
} // namespace hicamp
