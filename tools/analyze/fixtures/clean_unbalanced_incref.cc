// Clean twin of bad_unbalanced_incref: the acquired reference is
// handed to a consuming call (internLine consumes its line's refs).
namespace hicamp {
void
balancedIncRef(Memory &mem, Line &l, Plid p, bool pin)
{
    if (pin) {
        mem.incRef(p);
        mem.decRef(p);
    }
    note(pin);
}
} // namespace hicamp
