// Clean twin of bad_use_after_release: use first, release last.
namespace hicamp {
void
useThenRelease(Memory &mem, const Line &l)
{
    Plid p = mem.lookup(l);
    publish(p);
    mem.decRef(p);
}
} // namespace hicamp
