// Fixture: the declaration promises to take the reference over, but
// the body never touches the parameter.
// Expect: consumes-param-not-consumed
namespace hicamp {
void
swallowRef(Memory &mem, HICAMP_CONSUMES_REF Plid victim, bool log)
{
    if (log)
        note(log);
}
} // namespace hicamp
