// Clean twin of bad_double_decref: exactly one release per path.
namespace hicamp {
void
singleDecRef(Memory &mem, const Line &l, bool flag)
{
    Plid p = mem.lookup(l);
    if (flag) {
        mem.decRef(p);
        return;
    }
    mem.decRef(p);
}
} // namespace hicamp
