// Clean twin of bad_double_release_entry: each path releases once.
namespace hicamp {
void
singleReleaseEntry(SegBuilder &b, const Word *w, const WordMeta *m,
                   bool keep)
{
    Entry e = b.makeLeaf(w, m);
    if (keep)
        publish(e);
    b.release(e);
}
} // namespace hicamp
