// Fixture: a waiver with no rationale.  Expect: waiver-missing-reason
namespace hicamp {
void
waivedWithoutReason(Memory &mem, const Line &l)
{
    // hicamp-refcount: waive()
    Plid p = mem.lookup(l);
    (void)p;
}
} // namespace hicamp
