// Clean twin of bad_leak_fallthrough: released before the end.
namespace hicamp {
void
noLeakFallthrough(Memory &mem, const Line &l)
{
    Plid p = mem.internLine(l);
    mem.decRef(p);
}
} // namespace hicamp
