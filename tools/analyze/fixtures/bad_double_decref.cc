// Fixture: one owned reference, two releases on the same path.
// Expect: double-release
namespace hicamp {
void
doubleDecRef(Memory &mem, const Line &l, bool flag)
{
    Plid p = mem.lookup(l);
    if (flag)
        mem.decRef(p);
    mem.decRef(p); // second release when flag was true
}
} // namespace hicamp
