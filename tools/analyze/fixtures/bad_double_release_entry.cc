// Fixture: a builder entry released twice along the else path.
// Expect: double-release
namespace hicamp {
void
doubleReleaseEntry(SegBuilder &b, const Word *w, const WordMeta *m,
                   bool keep)
{
    Entry e = b.makeLeaf(w, m);
    if (keep)
        publish(e);
    else
        b.release(e);
    b.release(e);
}
} // namespace hicamp
