// Fixture: the owned result of a HICAMP_RETURNS_REF call is ignored
// outright.  Expect: discarded-ref
namespace hicamp {
void
discardLookup(Memory &mem, const Line &l)
{
    mem.lookup(l); // fresh reference dropped on the floor
}
} // namespace hicamp
