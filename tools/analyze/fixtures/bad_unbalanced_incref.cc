// Fixture: a bare incRef with no matching release or consuming
// transfer on the path.  Expect: unbalanced-acquire
namespace hicamp {
void
unbalancedIncRef(Memory &mem, Plid p, bool pin)
{
    if (pin)
        mem.incRef(p); // acquired, never released or handed off
    note(pin);
}
} // namespace hicamp
