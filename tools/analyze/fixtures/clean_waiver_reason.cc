// Clean twin of bad_waiver_no_reason: the waiver carries a rationale,
// so the (deliberate) imbalance below is accepted and documented.
namespace hicamp {
void
waivedWithReason(Memory &mem, const Line &l)
{
    // hicamp-refcount: waive(fixture models a pinned boot-time line
    // that is never reclaimed)
    Plid p = mem.lookup(l);
    (void)p;
}
} // namespace hicamp
