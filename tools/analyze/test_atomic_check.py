#!/usr/bin/env python3
"""Self-test for tools/analyze/atomic_check.py.

Every bad_*.cc fixture under fixtures/atomic/ must produce exactly its
expected rule (the ``Expect:`` line in the fixture header); every
clean_*.cc twin must come back with zero findings.  Fixture runs are
hermetic: --no-harvest keeps the KB to the checked files, so a fixture
checks the same way everywhere.  A fixture that needs a cross-module
declaration names its companion with a ``With:`` header line; the
companion (mod_*.cc, no bad_/clean_ prefix) is passed in the same run
and must itself be clean.
"""

import io
import os
import re
import sys
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import atomic_check  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures", "atomic")


def run_checker(paths):
    buf = io.StringIO()
    with redirect_stdout(buf):
        status = atomic_check.main(["--no-harvest"] + paths)
    return status, buf.getvalue()


def header(path, key):
    text = open(path, encoding="utf-8").read()
    m = re.search(key + r":\s*([\w.-]+)", text)
    return m.group(1) if m else None


def run_paths(path):
    """The fixture plus any With: companion, companions first."""
    companion = header(path, "With")
    out = []
    if companion:
        out.append(os.path.join(FIXTURES, companion))
    out.append(path)
    return out


class FixtureTests(unittest.TestCase):
    def test_every_bad_fixture_is_flagged_with_its_rule(self):
        bads = sorted(f for f in os.listdir(FIXTURES)
                      if f.startswith("bad_") and f.endswith(".cc"))
        self.assertGreaterEqual(len(bads), 15,
                                "fixture corpus shrank below 15 bugs")
        for f in bads:
            path = os.path.join(FIXTURES, f)
            rule = header(path, "Expect")
            self.assertIsNotNone(rule, f"{f} lacks an Expect: header")
            status, out = run_checker(run_paths(path))
            self.assertEqual(status, 1,
                             f"{f} expected findings, got:\n{out}")
            self.assertIn(f"[{rule}]", out,
                          f"{f} expected rule {rule}, got:\n{out}")
            # The seeded bug must be attributed to the bad file, not
            # its companion.
            for line in out.splitlines():
                if f"[{rule}]" in line:
                    self.assertIn(f, line.split(":", 1)[0])

    def test_every_clean_twin_passes(self):
        cleans = sorted(f for f in os.listdir(FIXTURES)
                        if f.startswith("clean_") and f.endswith(".cc"))
        self.assertGreaterEqual(len(cleans), 15)
        for f in cleans:
            path = os.path.join(FIXTURES, f)
            status, out = run_checker(run_paths(path))
            self.assertEqual(status, 0,
                             f"{f} expected a clean pass, got:\n{out}")

    def test_companions_are_clean_alone(self):
        mods = sorted(f for f in os.listdir(FIXTURES)
                      if f.startswith("mod_") and f.endswith(".cc"))
        for f in mods:
            status, out = run_checker([os.path.join(FIXTURES, f)])
            self.assertEqual(status, 0,
                             f"{f} expected a clean pass, got:\n{out}")

    def test_bad_and_clean_twins_match(self):
        names = os.listdir(FIXTURES)
        bads = {f[len("bad_"):] for f in names if f.startswith("bad_")}
        cleans = {f[len("clean_"):] for f in names
                  if f.startswith("clean_")}
        self.assertEqual(bads, cleans,
                         "every seeded bug needs a clean twin")

    def test_repo_tree_is_clean(self):
        # The annotated tree must pass with its reasoned waivers; this
        # is the same gate the atomic-analysis CI job enforces.
        root = os.path.dirname(os.path.dirname(HERE))
        buf = io.StringIO()
        with redirect_stdout(buf):
            status = atomic_check.main(["--root", root])
        self.assertEqual(status, 0,
                         f"repo tree not clean:\n{buf.getvalue()}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
