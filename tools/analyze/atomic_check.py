#!/usr/bin/env python3
"""Atomics publication-protocol checker (DESIGN.md §13).

Classifies every atomic load/store/RMW/fence under ``src/`` against
the role its field declares via the ``HICAMP_ATOMIC_*`` macros in
``src/common/atomic_annotations.hh``, and enforces the per-role
memory-order rules.  TSA proves the lock discipline and
``refcount_check.py`` proves reference ownership; this checker proves
the third leg — that each lock-free protocol uses the orders its role
demands, so a relaxed store where a release was meant is a build-time
finding instead of a TSan coin-flip.

Roles and rules
---------------
publish (``HICAMP_ATOMIC_PUBLISH``)
    The field publishes other data.  Store-side operations (store,
    exchange, RMW, CAS success) must carry release ordering
    [publish-relaxed-store]; relaxed loads are lock-serialized
    re-checks that need a waiver [publish-relaxed-load]; and the
    pairing table must close: a field with a release store needs an
    acquire-side load somewhere in the tree
    [publish-unpaired-release], and vice versa
    [publish-unpaired-acquire].

claim_cas (``HICAMP_ATOMIC_CLAIM_CAS``)
    Ownership claimed by CAS.  Each compare_exchange must use a sane
    order pair: failure no stronger than success
    [claim-cas-failure-exceeds-success] and never release/acq_rel on
    failure [claim-cas-release-on-failure].

counter (``HICAMP_ATOMIC_COUNTER``)
    Statistics.  RMWs and stores must be relaxed
    [counter-nonrelaxed-rmw]; loads must be relaxed
    [counter-nonrelaxed-load] and confined to the declaring module
    (same file stem) or the obs snapshot path (``src/obs/``) — a load
    anywhere else claims a quiescent point and needs a waiver
    [counter-load-outside-snapshot].

seqlock (``HICAMP_ATOMIC_SEQLOCK``)
    Data published through a SeqCount.  All accesses relaxed — the
    sequence word's fences order them [seqlock-nonrelaxed-access];
    loads only inside a retry loop that calls readBegin and
    re-validates [seqlock-load-outside-retry]; stores only inside a
    writeBegin/writeEnd section [seqlock-store-outside-write-section].

epoch (``HICAMP_ATOMIC_EPOCH``)
    §12 epoch words.  Touched only by the declaring module
    [epoch-outside-module] and never with a relaxed success order —
    the stable-pin handshake is seq_cst by design
    [epoch-relaxed-access].  CAS pairs follow the claim_cas sanity
    rules.

flag (``HICAMP_ATOMIC_FLAG``)
    Standalone state word.  All-relaxed use is legal; lock-shaped use
    must pair: test_and_set at least acquire
    [flag-weak-test-and-set], a release-side op requires an
    acquire-side reader [flag-unpaired-release] and vice versa
    [flag-unpaired-acquire].

Everywhere
----------
- An atomic field, parameter or reference declared without a role
  macro is an error [unannotated-atomic-field].
- An operation on an atomic the checker cannot resolve to a declared
  field is an error [unclassified-site] — zero unclassified sites is
  the repo gate.
- A bare ``std::atomic_thread_fence`` is an error [bare-fence]: fences
  belong inside role primitives, with a written justification.

Waivers and primitives
----------------------
``// hicamp-atomic: waive(reason)`` on the flagged line or the
contiguous ``//`` comment run above it suppresses a finding; an empty
reason is itself a finding [waiver-missing-rationale].  A function
that *defines* a protocol rather than using it (SeqCount's methods,
the epoch advance loop) carries ``// hicamp-atomic: primitive(reason)``
above its head: its sites are still classified (and fences still need
waivers) but the per-role rules are skipped.

Engine: token-level by default — the reference engine, since the CI
image has no clang python bindings; uses libclang for exact function
extents when the pinned bindings are importable (shared setup with
refcount-analysis).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

ROLE_MACROS = {
    "HICAMP_ATOMIC_PUBLISH": "publish",
    "HICAMP_ATOMIC_CLAIM_CAS": "claim_cas",
    "HICAMP_ATOMIC_COUNTER": "counter",
    "HICAMP_ATOMIC_SEQLOCK": "seqlock",
    "HICAMP_ATOMIC_EPOCH": "epoch",
    "HICAMP_ATOMIC_FLAG": "flag",
}
ROLE_MACRO_RE = re.compile(r"\b(" + "|".join(ROLE_MACROS) + r")\b")

WAIVER_RE = re.compile(r"hicamp-atomic:\s*waive\(\s*([^)]*?)\s*\)")
PRIMITIVE_RE = re.compile(r"hicamp-atomic:\s*primitive\(\s*([^)]*?)\s*\)")

# Operations that only std::atomic/std::atomic_flag expose: an
# unresolved object here is an unclassified site.
UNAMBIGUOUS_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set",
}
# Methods shared with containers (vector::clear, bitset::test, ...):
# classified only when the object resolves to a declared atomic.
AMBIGUOUS_OPS = {"test", "clear", "wait", "notify_one", "notify_all"}

OP_RE = re.compile(
    r"(?:\.|->)\s*(" +
    "|".join(sorted(UNAMBIGUOUS_OPS | AMBIGUOUS_OPS)) + r")\s*\(")
FENCE_RE = re.compile(r"\b(?:std::)?atomic_thread_fence\s*\(")
ORDER_RE = re.compile(r"\bmemory_order(?:::|_)([a-z_]+)")

ORDER_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
              "acq_rel": 3, "seq_cst": 4}
ACQUIRE_SIDE = {"consume", "acquire", "acq_rel", "seq_cst"}
RELEASE_SIDE = {"release", "acq_rel", "seq_cst"}

STORE_OPS = {"store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
             "fetch_or", "fetch_xor", "test_and_set", "clear",
             "compare_exchange_weak", "compare_exchange_strong"}
RMW_OPS = {"exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
           "fetch_xor", "test_and_set"}
LOAD_OPS = {"load", "test"}
CAS_OPS = {"compare_exchange_weak", "compare_exchange_strong"}

KEYWORDS = {
    "alignas", "auto", "bool", "break", "case", "catch", "char", "class",
    "const", "constexpr", "continue", "decltype", "default", "delete",
    "do", "double", "else", "enum", "explicit", "extern", "false",
    "float", "for", "friend", "goto", "if", "inline", "int", "long",
    "mutable", "namespace", "new", "noexcept", "nullptr", "operator",
    "private", "protected", "public", "return", "short", "signed",
    "sizeof", "static", "struct", "switch", "template", "this",
    "thread_local", "throw", "true", "try", "typedef", "typename",
    "union", "unsigned", "using", "virtual", "void", "volatile",
    "while",
}

# Declarations that *mention* std::atomic without declaring a
# checkable field (type aliases, new-expressions, templates).
DECL_SKIP_RE = re.compile(
    r"\b(?:new|using|typedef|template|sizeof|return|friend)\b")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token scans don't match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def marker_at(raw_lines, lineno, marker_re):
    """The marker match on the flagged line or in the contiguous run
    of // comment lines directly above it, else None.  The run is
    searched as one joined string so a waiver reason may wrap across
    comment lines, and a flagged line inside a multi-line statement
    first walks up to the statement head (the line after the nearest
    one ending in ';', '{' or '}')."""
    if not (1 <= lineno <= len(raw_lines)):
        return None
    m = marker_re.search(raw_lines[lineno - 1])
    if m:
        return m
    # Walk to the head of the statement the flagged line belongs to.
    head = lineno
    while head > 1:
        above = raw_lines[head - 2].strip()
        if above == "" or above.startswith("//") or \
                above.endswith((";", "{", "}")):
            break
        head -= 1
    # Collect the contiguous comment run above the head, then search
    # the joined text so multi-line reasons match.
    run = []
    ln = head - 1
    while 1 <= ln <= len(raw_lines) and \
            raw_lines[ln - 1].lstrip().startswith("//"):
        run.append(raw_lines[ln - 1].lstrip().lstrip("/").strip())
        ln -= 1
    run.reverse()
    return marker_re.search(" ".join(run)) if run else None


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Site:
    """One classified atomic operation (or fence)."""

    def __init__(self, path, rel, line, op, field, role, orders):
        self.path = path
        self.rel = rel
        self.line = line
        self.op = op
        self.field = field
        self.role = role
        self.orders = orders
        self.verdict = "ok"  # ok | waived | <rule>

    def to_json(self):
        return {"file": self.rel, "line": self.line, "op": self.op,
                "field": self.field, "role": self.role,
                "orders": self.orders, "verdict": self.verdict}


class KB:
    """Field name -> (role, declaring rel path, line).  Names are the
    unit of classification (the checker is token-level), so a name
    must not be declared under two different roles."""

    def __init__(self):
        self.fields = {}
        self.stems = {}

    def add(self, name, role, rel, line, findings):
        prev = self.fields.get(name)
        if prev and prev[0] != role:
            findings.append(Finding(
                rel, line, "ambiguous-role",
                f"atomic field '{name}' already declared as "
                f"{prev[0]} at {prev[1]}:{prev[2]}; one name, one "
                "role — rename the field"))
            return
        if not prev:
            self.fields[name] = (role, rel, line)
        # The same name may be declared in several files (a shared
        # parameter name, a header/impl pair); any declaring stem
        # counts as the field's home module.
        self.stems.setdefault(name, set()).add(
            os.path.splitext(os.path.basename(rel))[0])

    def role(self, name):
        e = self.fields.get(name)
        return e[0] if e else None

    def decl(self, name):
        return self.fields.get(name)

    def decl_stems(self, name):
        return self.stems.get(name, set())


def balanced_span(code, open_paren):
    """Index one past the close paren matching code[open_paren]."""
    d = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            d += 1
        elif code[j] == ")":
            d -= 1
            if d == 0:
                return j + 1
    return None


def split_top_commas(text):
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def line_of_offset(text, off):
    return text.count("\n", 0, off) + 1


# ---------------------------------------------------------------------------
# Declaration harvesting


def declared_name(decl):
    """The declarator name of a declaration fragment: the last
    depth-0 identifier that is not a type/macro/keyword.  ``decl``
    runs from just after the role macro to the initializer/terminator
    (callers truncate at top-level ``=``, ``{``, ``,`` or ``;``)."""
    depth = 0
    last = None
    for m in re.finditer(r"[A-Za-z_]\w*|[<>()\[\]]", decl):
        tok = m.group(0)
        if tok in "<([":
            depth += 1
        elif tok in ">)]":
            depth -= 1
        elif depth == 0 and tok[0].isalpha() or tok[0] == "_":
            if tok in KEYWORDS or depth != 0:
                continue
            rest = decl[m.end():m.end() + 2].lstrip()
            if rest.startswith(("(", "<")) or rest.startswith("::"):
                continue  # macro call / template name / qualifier
            last = tok
    return last


def decl_fragment(code, start):
    """Declaration text from ``start`` to the first top-level
    terminator: ``;``, ``=``, ``{``, ``,`` or an unbalanced ``)``."""
    depth = 0
    for j in range(start, min(start + 2000, len(code))):
        c = code[j]
        if c in "(<[":
            depth += 1
        elif c in ">]":
            depth -= 1
        elif c == ")":
            depth -= 1
            if depth < 0:
                return code[start:j]
        elif depth == 0 and c in ";={,":
            return code[start:j]
    return code[start:start + 2000]


def preproc_lines(code):
    """Line numbers of preprocessor directives (the role macros'
    own #define lines must not harvest as fields)."""
    out = set()
    for i, ln in enumerate(code.split("\n"), 1):
        if ln.lstrip().startswith("#"):
            out.add(i)
    return out


def harvest_roles(code, rel, kb, findings):
    """Record every role-annotated declaration in ``code``."""
    skip = preproc_lines(code)
    for m in ROLE_MACRO_RE.finditer(code):
        if line_of_offset(code, m.start()) in skip:
            continue
        role = ROLE_MACROS[m.group(1)]
        frag = decl_fragment(code, m.end())
        name = declared_name(frag)
        line = line_of_offset(code, m.start())
        if not name:
            findings.append(Finding(
                rel, line, "annotation-without-field",
                f"{m.group(1)} is not followed by a parsable "
                "declaration"))
            continue
        kb.add(name, role, rel, line, findings)


def check_unannotated(code, raw_lines, rel, kb, findings):
    """Flag atomic declarations whose name carries no role."""
    seen = set()
    skip = preproc_lines(code)
    for m in re.finditer(r"\bstd::atomic(?:<|_flag\b|_bool\b)", code):
        if line_of_offset(code, m.start()) in skip:
            continue
        # Statement context: scan back to the previous separator; the
        # role macro, if any, sits between it and the type.
        j = m.start()
        k = j
        while k > 0 and code[k - 1] not in ";{}(),:":
            k -= 1
        ctx = code[k:j]
        if ROLE_MACRO_RE.search(ctx):
            continue
        if DECL_SKIP_RE.search(ctx) or DECL_SKIP_RE.search(
                code[j:j + 40]):
            continue
        frag = decl_fragment(code, k)
        name = declared_name(frag)
        if not name or name in kb.fields:
            # out-of-class definitions and later mentions of an
            # already-annotated field are covered by the declaration
            continue
        line = line_of_offset(code, m.start())
        if (name, line) in seen:
            continue
        seen.add((name, line))
        wm = marker_at(raw_lines, line, WAIVER_RE)
        if wm is not None:
            if not wm.group(1):
                findings.append(Finding(
                    rel, line, "waiver-missing-rationale",
                    "waive() with no reason; say why this atomic "
                    "needs no role"))
            continue
        findings.append(Finding(
            rel, line, "unannotated-atomic-field",
            f"atomic '{name}' declared without a HICAMP_ATOMIC_* "
            "role; pick one (atomic_annotations.hh) or waive with "
            "// hicamp-atomic: waive(reason)"))
        kb.fields.setdefault(name, (None, rel, line))


# ---------------------------------------------------------------------------
# Function extraction (token engine; optional libclang extents)


QUALIFIER_TAIL_RE = re.compile(r"^[\s\w]*$")
CLASSY_RE = re.compile(r"\b(?:struct|class|enum|union|namespace)\b")


def functions_tokens(code):
    """Yield (head_line, body_line, end_line, head, body) for every
    function definition: a ``{`` whose head since the previous
    top-level separator contains a parameter list and, after its last
    ``)``, only qualifier words (const, noexcept, macros...)."""
    out = []
    i, n = 0, len(code)
    line = 1
    head_start = 0
    head_line = 1
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
        elif c == "{":
            head = code[head_start:i]
            rp = head.rfind(")")
            is_fn = (rp >= 0 and "(" in head and
                     QUALIFIER_TAIL_RE.match(head[rp + 1:]) and
                     not CLASSY_RE.search(head))
            if is_fn:
                j, d, l2 = i + 1, 1, line
                while j < n and d:
                    if code[j] == "\n":
                        l2 += 1
                    elif code[j] == "{":
                        d += 1
                    elif code[j] == "}":
                        d -= 1
                    j += 1
                out.append((head_line, line, l2, head,
                            code[i + 1:j - 1]))
                line = l2
                i = j
                head_start = i
                head_line = line
                continue
            head_start = i + 1
            head_line = line
        elif c in ";}":
            head_start = i + 1
            head_line = line
        i += 1
    # adjust head_line past leading blank lines of each head
    fixed = []
    for head_line, body_line, end_line, head, body in out:
        lead = 0
        for hl in head.split("\n"):
            if hl.strip():
                break
            lead += 1
        fixed.append((head_line + lead, body_line, end_line, head,
                      body))
    return fixed


def functions_libclang(path, code):
    """Exact extents via libclang when the bindings exist; None (token
    fallback) otherwise."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-Isrc"])
        lines = code.splitlines()
        out = []
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FUNCTION_DECL,
                            cindex.CursorKind.CXX_METHOD,
                            cindex.CursorKind.FUNCTION_TEMPLATE,
                            cindex.CursorKind.CONSTRUCTOR) \
                    and cur.is_definition() \
                    and cur.location.file \
                    and cur.location.file.name == path:
                lo, hi = cur.extent.start.line, cur.extent.end.line
                text = "\n".join(lines[lo - 1:hi])
                brace = text.find("{")
                if brace < 0:
                    continue
                out.append((lo, lo + text.count("\n", 0, brace), hi,
                            text[:brace], text[brace + 1:]))
        return out or None
    except Exception:
        return None


class Function:
    def __init__(self, head_line, body_line, end_line, head, body,
                 raw_lines):
        self.head_line = head_line
        self.end_line = end_line
        self.head = head
        self.body = body
        self.text = head + body
        # The head span can start at the previous statement boundary
        # (swallowing the comment run); the body-open line walks back
        # up through the declarator to the comments either way.
        pm = marker_at(raw_lines, head_line, PRIMITIVE_RE) or \
            marker_at(raw_lines, body_line, PRIMITIVE_RE)
        self.primitive = pm is not None
        self.primitive_reason = pm.group(1) if pm else ""
        self.aliases = self._aliases(head + body)

    @staticmethod
    def _aliases(text):
        """Reference bindings that alias an atomic field: range-for
        element refs and plain reference declarations."""
        out = {}
        for m in re.finditer(
                r"for\s*\(\s*[\w:<>\s]*?&\s*(\w+)\s*:\s*"
                r"([A-Za-z_]\w*)", text):
            out[m.group(1)] = m.group(2)
        for m in re.finditer(
                r"&\s*(\w+)\s*=\s*([^;,()]+?)\s*[;,)]", text):
            tgt = object_of_expr(m.group(2))
            if tgt:
                out[m.group(1)] = tgt
        return out


def object_of_expr(expr):
    """Last member-ish identifier of an expression, indexing
    stripped: ``locks_[i].flag`` -> flag, ``state_->recs[i]`` ->
    recs, ``refs_`` -> refs_."""
    expr = expr.strip()
    j = len(expr)
    while j > 0 and expr[j - 1].isspace():
        j -= 1
    if j > 0 and expr[j - 1] == "]":
        d = 0
        while j > 0:
            j -= 1
            if expr[j] == "]":
                d += 1
            elif expr[j] == "[":
                d -= 1
                if d == 0:
                    break
        while j > 0 and expr[j - 1].isspace():
            j -= 1
    k = j
    while k > 0 and (expr[k - 1].isalnum() or expr[k - 1] == "_"):
        k -= 1
    name = expr[k:j]
    return name if name and not name[0].isdigit() else None


def object_before(code, off):
    """The object component immediately left of the ``.``/``->`` at
    ``off`` (offset of the '.' or the '-' of '->')."""
    j = off
    while j > 0 and code[j - 1].isspace():
        j -= 1
    return object_of_expr(code[max(0, j - 200):j])


# ---------------------------------------------------------------------------
# Site collection and per-role rules


def parse_orders(op, args):
    """Memory orders of one call.  Returns (orders, success, failure)
    — success/failure meaningful for CAS only; defaults applied."""
    parts = split_top_commas(args) if args.strip() else []
    orders = ORDER_RE.findall(args)
    if op in CAS_OPS:
        if len(parts) >= 4:
            succ = (ORDER_RE.search(parts[2]) or [None]) and \
                (ORDER_RE.search(parts[2]).group(1)
                 if ORDER_RE.search(parts[2]) else None)
            fail = (ORDER_RE.search(parts[3]).group(1)
                    if ORDER_RE.search(parts[3]) else None)
            return orders, succ or "seq_cst", fail or "seq_cst"
        if len(parts) == 3:
            succ = (ORDER_RE.search(parts[2]).group(1)
                    if ORDER_RE.search(parts[2]) else "seq_cst")
            derived = {"acq_rel": "acquire", "release": "relaxed"}
            return orders, succ, derived.get(succ, succ)
        return orders, "seq_cst", "seq_cst"
    order = orders[0] if orders else "seq_cst"
    return orders, order, None


def find_enclosing(functions, line):
    for fn in functions:
        if fn.head_line <= line <= fn.end_line:
            return fn
    return None


LOOP_RE = re.compile(r"\b(?:for|while|do)\b")


class Checker:
    def __init__(self, kb, findings):
        self.kb = kb
        self.findings = findings
        self.sites = []
        self.waived = 0
        # per-field pairing table: field -> {"rel": [sites],
        # "acq": [sites]} for publish/flag pairing closure
        self.pairing = {}

    # -- helpers

    def _waive(self, raw_lines, rel, line, site, rule, message):
        """Emit a finding unless a reasoned waiver covers the line."""
        wm = marker_at(raw_lines, line, WAIVER_RE)
        if wm is not None:
            if not wm.group(1):
                self.findings.append(Finding(
                    rel, line, "waiver-missing-rationale",
                    "waive() with no reason; write down why this "
                    "order is sound"))
                if site:
                    site.verdict = "waiver-missing-rationale"
            else:
                self.waived += 1
                if site:
                    site.verdict = "waived"
            return
        self.findings.append(Finding(rel, line, rule, message))
        if site:
            site.verdict = rule

    def _note_pairing(self, site, succ):
        e = self.pairing.setdefault(site.field, {"rel": [], "acq": []})
        op = site.op
        if op in STORE_OPS and (succ in RELEASE_SIDE):
            e["rel"].append(site)
        if op in LOAD_OPS and succ in ACQUIRE_SIDE:
            e["acq"].append(site)
        if op in RMW_OPS | CAS_OPS and succ in ACQUIRE_SIDE:
            e["acq"].append(site)

    # -- per-file pass

    def check_file(self, path, rel, raw, code):
        raw_lines = raw.splitlines()
        functions = functions_libclang(path, code) or \
            functions_tokens(code)
        functions = [Function(*f, raw_lines) for f in functions]

        for m in FENCE_RE.finditer(code):
            line = line_of_offset(code, m.start())
            args = code[m.end():balanced_span(code, m.end() - 1) or
                        m.end()]
            orders = ORDER_RE.findall(args)
            site = Site(path, rel, line, "atomic_thread_fence",
                        None, "fence", orders)
            self.sites.append(site)
            self._waive(raw_lines, rel, line, site, "bare-fence",
                        "bare atomic_thread_fence; fences belong to "
                        "role primitives — justify with "
                        "// hicamp-atomic: waive(reason)")

        for m in OP_RE.finditer(code):
            op = m.group(1)
            line = line_of_offset(code, m.start())
            fn = find_enclosing(functions, line)
            obj = object_before(code, m.start())
            # resolve aliases first (range-for refs, reference
            # bindings): a local alias shadows any same-named field
            hops = 0
            while obj is not None and fn and obj in fn.aliases and \
                    hops < 4:
                obj = fn.aliases[obj]
                hops += 1
            role = self.kb.role(obj) if obj else None
            span = balanced_span(code, m.end() - 1)
            args = code[m.end():span - 1] if span else ""
            orders, succ, fail = parse_orders(op, args)

            # Domain methods shadow the atomic vocabulary
            # (Memory::store(), IteratorRegister::load(vsid, field)):
            # an atomic store always takes a value, and any explicit
            # order argument must be a memory_order token.
            if role is None:
                if op == "store" and not args.strip():
                    continue
                if op in ("load", "store", "exchange") and \
                        args.strip() and not orders:
                    continue

            if role is None:
                if obj in self.kb.fields:
                    continue  # unannotated decl already reported
                if op in AMBIGUOUS_OPS:
                    continue  # vector::clear etc.
                site = Site(path, rel, line, op, obj, None, orders)
                self.sites.append(site)
                self._waive(
                    raw_lines, rel, line, site, "unclassified-site",
                    f"cannot resolve '{obj}.{op}(...)' to a "
                    "role-annotated atomic field; annotate the "
                    "declaration or waive with rationale")
                continue

            site = Site(path, rel, line, op, obj, role, orders)
            self.sites.append(site)
            self._note_pairing(site, succ)
            if fn and fn.primitive:
                if not fn.primitive_reason:
                    self.findings.append(Finding(
                        rel, line, "primitive-missing-rationale",
                        "primitive() with no reason"))
                continue
            getattr(self, "rule_" + role)(
                raw_lines, rel, line, site, op, succ, fail, fn)

        return functions

    # -- role rules

    def _cas_sanity(self, raw_lines, rel, line, site, succ, fail):
        if fail in ("release", "acq_rel"):
            self._waive(raw_lines, rel, line, site,
                        "claim-cas-release-on-failure",
                        f"CAS failure order {fail} releases nothing "
                        "(no store happened); use relaxed/acquire")
        elif ORDER_RANK.get(fail, 4) > ORDER_RANK.get(succ, 4):
            self._waive(raw_lines, rel, line, site,
                        "claim-cas-failure-exceeds-success",
                        f"CAS failure order {fail} is stronger than "
                        f"success order {succ}")

    def rule_publish(self, raw_lines, rel, line, site, op, succ, fail,
                     fn):
        if op in CAS_OPS:
            self._cas_sanity(raw_lines, rel, line, site, succ, fail)
        if op in STORE_OPS and succ not in RELEASE_SIDE:
            self._waive(raw_lines, rel, line, site,
                        "publish-relaxed-store",
                        f"{succ} {op} on publish field "
                        f"'{site.field}'; publication requires a "
                        "release store (or prove serialization and "
                        "waive)")
        elif op in LOAD_OPS and succ == "relaxed":
            self._waive(raw_lines, rel, line, site,
                        "publish-relaxed-load",
                        f"relaxed load of publish field "
                        f"'{site.field}'; lock-free readers need "
                        "acquire — if a lock serializes this "
                        "re-check, waive with the lock's name")

    def rule_claim_cas(self, raw_lines, rel, line, site, op, succ,
                       fail, fn):
        if op in CAS_OPS:
            self._cas_sanity(raw_lines, rel, line, site, succ, fail)

    def rule_counter(self, raw_lines, rel, line, site, op, succ, fail,
                     fn):
        if op in CAS_OPS:
            self._cas_sanity(raw_lines, rel, line, site, succ, fail)
        if op in STORE_OPS and succ != "relaxed":
            self._waive(raw_lines, rel, line, site,
                        "counter-nonrelaxed-rmw",
                        f"{succ} {op} on counter '{site.field}'; "
                        "counters are relaxed-only — a stronger "
                        "order advertises synchronization that "
                        "does not exist")
            return
        if op in LOAD_OPS:
            if succ != "relaxed":
                self._waive(raw_lines, rel, line, site,
                            "counter-nonrelaxed-load",
                            f"{succ} load of counter "
                            f"'{site.field}'; counters are "
                            "relaxed-only")
                return
            decl = self.kb.decl(site.field)
            stem = os.path.splitext(os.path.basename(rel))[0]
            if stem not in self.kb.decl_stems(site.field) and \
                    "src/obs/" not in rel.replace(os.sep, "/"):
                self._waive(
                    raw_lines, rel, line, site,
                    "counter-load-outside-snapshot",
                    f"counter '{site.field}' read outside its "
                    f"declaring module ({decl[1] if decl else '?'}) "
                    "and the obs snapshot path; document the "
                    "quiescent point with a waiver")

    def rule_seqlock(self, raw_lines, rel, line, site, op, succ, fail,
                     fn):
        if succ != "relaxed":
            self._waive(raw_lines, rel, line, site,
                        "seqlock-nonrelaxed-access",
                        f"{succ} {op} on seqlock field "
                        f"'{site.field}'; the SeqCount fences carry "
                        "the ordering — use relaxed")
            return
        text = fn.text if fn else ""
        if op in LOAD_OPS:
            reader_ok = ("readBegin" in text and "validate" in text
                         and LOOP_RE.search(text))
            writer_ok = "writeBegin" in text
            if not (reader_ok or writer_ok):
                self._waive(raw_lines, rel, line, site,
                            "seqlock-load-outside-retry",
                            f"load of seqlock field '{site.field}' "
                            "outside a readBegin/validate retry "
                            "loop; a torn read here is silent")
        elif op in STORE_OPS:
            if not ("writeBegin" in text and "writeEnd" in text):
                self._waive(raw_lines, rel, line, site,
                            "seqlock-store-outside-write-section",
                            f"store to seqlock field '{site.field}' "
                            "outside a writeBegin/writeEnd section")

    def rule_epoch(self, raw_lines, rel, line, site, op, succ, fail,
                   fn):
        decl = self.kb.decl(site.field)
        stem = os.path.splitext(os.path.basename(rel))[0]
        if stem not in self.kb.decl_stems(site.field):
            self._waive(raw_lines, rel, line, site,
                        "epoch-outside-module",
                        f"epoch word '{site.field}' touched outside "
                        f"its module ({decl[1] if decl else '?'}); "
                        "the §12 pin protocol lives there only")
            return
        if op in CAS_OPS:
            self._cas_sanity(raw_lines, rel, line, site, succ, fail)
        if succ == "relaxed":
            self._waive(raw_lines, rel, line, site,
                        "epoch-relaxed-access",
                        f"relaxed {op} on epoch word "
                        f"'{site.field}'; the §12 stable-pin "
                        "handshake needs seq_cst/acquire/release "
                        "orders")

    def rule_flag(self, raw_lines, rel, line, site, op, succ, fail,
                  fn):
        if op in CAS_OPS:
            self._cas_sanity(raw_lines, rel, line, site, succ, fail)
        if op == "test_and_set" and succ not in ACQUIRE_SIDE:
            self._waive(raw_lines, rel, line, site,
                        "flag-weak-test-and-set",
                        f"{succ} test_and_set on '{site.field}'; a "
                        "lock-shaped claim needs at least acquire")

    # -- cross-site pairing closure

    def close_pairing(self, raw_by_rel):
        for field, e in sorted(self.pairing.items()):
            role = self.kb.role(field)
            if role not in ("publish", "flag"):
                continue
            if e["rel"] and not e["acq"]:
                s = e["rel"][0]
                self._waive(
                    raw_by_rel[s.rel], s.rel, s.line, s,
                    "publish-unpaired-release" if role == "publish"
                    else "flag-unpaired-release",
                    f"release store to '{field}' has no acquire-side "
                    "reader anywhere in the tree; either the release "
                    "is dead weight or a reader is missing its "
                    "acquire")
            if e["acq"] and not e["rel"] and role == "publish":
                s = e["acq"][0]
                self._waive(
                    raw_by_rel[s.rel], s.rel, s.line, s,
                    "publish-unpaired-acquire",
                    f"acquire load of '{field}' pairs with no "
                    "release store anywhere in the tree")
            if e["acq"] and not e["rel"] and role == "flag" and any(
                    s.op == "test_and_set" for s in e["acq"]):
                s = e["acq"][0]
                self._waive(
                    raw_by_rel[s.rel], s.rel, s.line, s,
                    "flag-unpaired-acquire",
                    f"acquire-side claim of '{field}' pairs with no "
                    "release-side op anywhere in the tree")


# ---------------------------------------------------------------------------
# Driver


def default_targets(root):
    targets = []
    src = os.path.join(root, "src")
    for dirpath, _, files in os.walk(src):
        for f in sorted(files):
            if f.endswith((".hh", ".cc")):
                targets.append(os.path.join(dirpath, f))
    return targets


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="HICAMP atomics publication-protocol checker "
                    "(DESIGN.md §13)")
    ap.add_argument("files", nargs="*",
                    help="files to check (default: src/ under --root)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        help="repository root")
    ap.add_argument("--no-harvest", action="store_true",
                    help="skip harvesting roles from src/ (hermetic "
                         "fixture runs: only the checked files feed "
                         "the KB)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write the site-classification report here")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or \
        default_targets(root)

    findings = []
    kb = KB()

    def relpath(p):
        rp = os.path.relpath(p, root)
        return rp.replace(os.sep, "/") if not rp.startswith("..") \
            else p

    # Pass 1: roles from src/ (unless hermetic) plus the checked files
    harvest_files = [] if args.no_harvest else default_targets(root)
    texts = {}
    for path in dict.fromkeys(harvest_files + files):
        if not os.path.isfile(path):
            print(f"atomic_check: no such file: {path}",
                  file=sys.stderr)
            return 2
        raw = open(path, encoding="utf-8").read()
        texts[path] = (raw, strip_comments_and_strings(raw))
    for path in dict.fromkeys(harvest_files + files):
        harvest_roles(texts[path][1], relpath(path), kb, findings)

    # Pass 2: declarations without roles, then every site
    checker = Checker(kb, findings)
    raw_by_rel = {}
    for path in files:
        raw, code = texts[path]
        rel = relpath(path)
        raw_by_rel[rel] = raw.splitlines()
        check_unannotated(code, raw_by_rel[rel], rel, kb, findings)
    for path in files:
        raw, code = texts[path]
        checker.check_file(path, relpath(path), raw, code)
    checker.close_pairing(raw_by_rel)

    uniq = {}
    for f in findings:
        uniq.setdefault(f.key(), f)
    findings = sorted(uniq.values(), key=lambda f: (f.path, f.line,
                                                    f.rule))
    for f in findings:
        print(f)

    if args.json:
        classified = sum(1 for s in checker.sites
                         if s.role not in (None,))
        report = {
            "root": root,
            "files": len(files),
            "fields": {n: {"role": r[0], "file": r[1], "line": r[2]}
                       for n, r in sorted(kb.fields.items())},
            "sites": [s.to_json() for s in checker.sites],
            "summary": {
                "sites": len(checker.sites),
                "classified": classified,
                "unclassified": len(checker.sites) - classified,
                "waived": checker.waived,
                "findings": len(findings),
            },
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)

    print(f"atomic_check: {len(findings)} finding(s) in "
          f"{len(files)} file(s); {len(checker.sites)} site(s), "
          f"{len(kb.fields)} field(s), {checker.waived} waived")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
