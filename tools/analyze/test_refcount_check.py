#!/usr/bin/env python3
"""Self-test for tools/analyze/refcount_check.py.

Every bad_*.cc fixture must produce exactly its expected rule (the
``Expect:`` line in the fixture header); every clean_*.cc twin must
come back with zero findings.  Fixture runs are hermetic: --no-harvest
keeps the KB at the seeded vocabulary so a single fixture file checks
the same way everywhere.
"""

import io
import os
import re
import sys
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import refcount_check  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")


def run_checker(paths):
    buf = io.StringIO()
    with redirect_stdout(buf):
        status = refcount_check.main(["--no-harvest"] + paths)
    return status, buf.getvalue()


def expected_rule(path):
    text = open(path, encoding="utf-8").read()
    m = re.search(r"Expect:\s*([\w-]+)", text)
    return m.group(1) if m else None


class FixtureTests(unittest.TestCase):
    def test_every_bad_fixture_is_flagged_with_its_rule(self):
        bads = sorted(f for f in os.listdir(FIXTURES)
                      if f.startswith("bad_") and f.endswith(".cc"))
        self.assertGreaterEqual(len(bads), 10,
                                "fixture corpus shrank below 10 bugs")
        for f in bads:
            path = os.path.join(FIXTURES, f)
            rule = expected_rule(path)
            self.assertIsNotNone(rule, f"{f} lacks an Expect: header")
            status, out = run_checker([path])
            self.assertEqual(status, 1,
                             f"{f} expected findings, got:\n{out}")
            self.assertIn(f"[{rule}]", out,
                          f"{f} expected rule {rule}, got:\n{out}")

    def test_every_clean_twin_passes(self):
        cleans = sorted(f for f in os.listdir(FIXTURES)
                        if f.startswith("clean_") and f.endswith(".cc"))
        self.assertGreaterEqual(len(cleans), 10)
        for f in cleans:
            status, out = run_checker([os.path.join(FIXTURES, f)])
            self.assertEqual(
                status, 0, f"{f} should be clean but got:\n{out}")

    def test_bad_corpus_in_one_run(self):
        bads = sorted(os.path.join(FIXTURES, f)
                      for f in os.listdir(FIXTURES)
                      if f.startswith("bad_") and f.endswith(".cc"))
        status, out = run_checker(bads)
        self.assertEqual(status, 1)
        # one finding per seeded bug: no fixture double-reports
        for f in bads:
            rule = expected_rule(f)
            hits = [l for l in out.splitlines()
                    if l.startswith(f + ":")]
            self.assertEqual(
                len(hits), 1,
                f"{os.path.basename(f)} wants exactly one finding, "
                f"got {hits}")
            self.assertIn(f"[{rule}]", hits[0])


class EngineTests(unittest.TestCase):
    def test_waiver_suppresses_with_reason(self):
        path = os.path.join(FIXTURES, "clean_waiver_reason.cc")
        status, out = run_checker([path])
        self.assertEqual(status, 0, out)

    def test_missing_file_is_usage_error(self):
        status, _ = run_checker([os.path.join(FIXTURES, "nope.cc")])
        self.assertEqual(status, 2)

    def test_kb_harvests_annotations(self):
        kb = refcount_check.KB()
        kb.harvest_text(
            "HICAMP_RETURNS_REF Plid grab(const Line &l);\n"
            "void give(HICAMP_CONSUMES_REF Plid p, int n);\n"
            "HICAMP_RELEASES_REF void drop(Plid p);\n")
        self.assertIn("grab", kb.producers)
        self.assertIn("drop", kb.releasers)
        self.assertEqual(kb.consumer_indices.get("give"), {0})
        self.assertEqual(kb.consumed_params.get("give"), {"p"})


if __name__ == "__main__":
    unittest.main()
