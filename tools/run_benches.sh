#!/usr/bin/env bash
# Run the benchmark suite and aggregate the results.
#
# Usage: tools/run_benches.sh [--quick] [--build-dir DIR] [--out-dir DIR]
#                              [--check-static]
#
#   --quick         smoke-sized runs (CI); full sweeps otherwise
#   --build-dir     build tree holding bench/ binaries (default: build)
#   --out-dir       where logs and BENCH_*.json land (default: repo root)
#   --check-static  preflight the static gates (hicamp_lint,
#                   refcount_check, atomic_check) and refuse to bench
#                   a failing tree — numbers from a tree that flunks
#                   its own protocol checkers are not worth archiving
#
# Every bench's stdout is captured under $out_dir/bench-logs/,
# bench_mt_scaling and bench_server write their own BENCH_*.json
# trajectory files, and a BENCH_summary.json with per-bench pass/fail
# status is emitted. Every BENCH_*.json present afterwards must parse
# as non-empty JSON or the suite fails.
#
# A bench fails if its process exits non-zero OR its output contains a
# FAIL verdict row: benches with internal self-checks print
# "SELFCHECK ... FAIL" / table rows marked FAIL, and a verdict that
# only lives in the log must still fail the suite.

set -u

quick=0
build_dir=build
out_dir=""
check_static=0
while [ $# -gt 0 ]; do
    case "$1" in
      --quick) quick=1 ;;
      --build-dir) shift; build_dir=$1 ;;
      --out-dir) shift; out_dir=$1 ;;
      --check-static) check_static=1 ;;
      *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

root=$(cd "$(dirname "$0")/.." && pwd)

if [ "$check_static" = 1 ]; then
    echo "== static preflight (lint + refcount + atomic) =="
    static_ok=1
    for checker in \
        "$root/tools/lint/hicamp_lint.py" \
        "$root/tools/analyze/refcount_check.py" \
        "$root/tools/analyze/atomic_check.py"; do
        if ! python3 "$checker" --root "$root"; then
            static_ok=0
        fi
    done
    if [ "$static_ok" != 1 ]; then
        echo "run_benches: static preflight failed; refusing to" \
             "bench a tree that flunks its own checkers" >&2
        exit 1
    fi
fi
case "$build_dir" in
  /*) ;;
  *) build_dir="$root/$build_dir" ;;
esac
if [ -z "$out_dir" ]; then
    out_dir=$root
fi
mkdir -p "$out_dir"
out_dir=$(cd "$out_dir" && pwd)
logs="$out_dir/bench-logs"
mkdir -p "$logs"
cd "$out_dir"

benches=(
    bench_sec511_concurrency
    bench_fig6_memcached_dram
    bench_fig7_spmv_traffic
    bench_fig8_matrix_footprint
    bench_fig9_vm_scaling
    bench_fig10_tile_scaling
    bench_table1_memcached_compaction
    bench_table2_matrix_compaction
    bench_ablation_compaction
    bench_ablation_sharding
)

declare -A status

# A FAIL verdict is a whole word so e.g. "FAILOVER" in a workload name
# can't trip it; benches print verdicts as "... FAIL" table cells.
log_has_fail_verdict() {
    grep -Eq '(^|[^A-Za-z0-9_])FAIL([^A-Za-z0-9_]|$)' "$1"
}

run_one() {
    local name=$1; shift
    local bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
        echo "-- $name: MISSING ($bin not built)"
        status[$name]=missing
        return
    fi
    echo "-- $name"
    if "$bin" "$@" > "$logs/$name.log" 2>&1; then
        if log_has_fail_verdict "$logs/$name.log"; then
            echo "   FAIL verdict in output (see $logs/$name.log)"
            status[$name]=verdict-failed
        else
            status[$name]=ok
        fi
    else
        echo "   FAILED (see $logs/$name.log)"
        status[$name]=failed
    fi
}

for b in "${benches[@]}"; do
    run_one "$b"
done

# These benches own their JSON trajectory files.
if [ "$quick" = 1 ]; then
    run_one bench_mt_scaling --smoke --json "$out_dir/BENCH_mt_scaling.json"
    run_one bench_server --smoke --json "$out_dir/BENCH_server.json"
else
    run_one bench_mt_scaling --json "$out_dir/BENCH_mt_scaling.json"
    run_one bench_server --json "$out_dir/BENCH_server.json"
fi

# Every JSON artifact a bench produced must parse and be non-empty: a
# truncated or empty trajectory file silently poisons downstream
# comparisons, so it fails the suite like any bench failure.
json_bad=0
echo
echo "== validating BENCH_*.json artifacts =="
for j in "$out_dir"/BENCH_*.json; do
    [ -e "$j" ] || continue
    if python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
sys.exit(0 if data else 1)
' "$j" 2>/dev/null; then
        echo "   OK    $(basename "$j")"
    else
        echo "   BAD   $(basename "$j") (unparseable or empty)" >&2
        json_bad=1
    fi
done

{
    echo '{'
    echo "  \"quick\": $([ "$quick" = 1 ] && echo true || echo false),"
    echo '  "benches": {'
    n=${#status[@]}
    i=0
    for b in "${benches[@]}" bench_mt_scaling bench_server; do
        i=$((i + 1))
        sep=$([ "$i" -lt "$n" ] && echo , || echo '')
        echo "    \"$b\": \"${status[$b]}\"$sep"
    done
    echo '  }'
    echo '}'
} > "$out_dir/BENCH_summary.json"

# The exit code is derived from the summary table itself: any row that
# prints FAIL or MISS below must fail the suite — the table and the
# exit status can never disagree again.
failed=0
echo
echo "== bench summary =="
for b in "${benches[@]}" bench_mt_scaling bench_server; do
    case "${status[$b]}" in
      ok)      printf '   PASS  %s\n' "$b" ;;
      missing) printf '   MISS  %s\n' "$b"; failed=1 ;;
      *)       printf '   FAIL  %s\n' "$b"; failed=1 ;;
    esac
done
if [ "$json_bad" != 0 ]; then
    echo "   FAIL  json-artifact validation"
    failed=1
fi
echo
echo "wrote $out_dir/BENCH_summary.json ($([ "$failed" = 0 ] && echo all green || echo FAILURES))"
exit "$failed"
