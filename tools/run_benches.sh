#!/usr/bin/env bash
# Run the benchmark suite and aggregate the results at the repo root.
#
# Usage: tools/run_benches.sh [--quick] [--build-dir DIR]
#
#   --quick      smoke-sized runs (CI); full sweeps otherwise
#   --build-dir  build tree holding bench/ binaries (default: build)
#
# Every bench's stdout is captured under bench-logs/, bench_mt_scaling
# writes BENCH_mt_scaling.json itself, and a BENCH_summary.json with
# per-bench pass/fail status is emitted at the repo root.

set -u

quick=0
build_dir=build
while [ $# -gt 0 ]; do
    case "$1" in
      --quick) quick=1 ;;
      --build-dir) shift; build_dir=$1 ;;
      *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"
logs=bench-logs
mkdir -p "$logs"

benches=(
    bench_sec511_concurrency
    bench_fig6_memcached_dram
    bench_fig7_spmv_traffic
    bench_fig8_matrix_footprint
    bench_fig9_vm_scaling
    bench_fig10_tile_scaling
    bench_table1_memcached_compaction
    bench_table2_matrix_compaction
    bench_ablation_compaction
    bench_ablation_sharding
)

declare -A status
failed=0

run_one() {
    local name=$1; shift
    local bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
        echo "-- $name: MISSING ($bin not built)"
        status[$name]=missing
        failed=1
        return
    fi
    echo "-- $name"
    if "$bin" "$@" > "$logs/$name.log" 2>&1; then
        status[$name]=ok
    else
        echo "   FAILED (see $logs/$name.log)"
        status[$name]=failed
        failed=1
    fi
}

for b in "${benches[@]}"; do
    run_one "$b"
done

# The multi-threaded scaling bench owns its JSON trajectory file.
if [ "$quick" = 1 ]; then
    run_one bench_mt_scaling --smoke --json BENCH_mt_scaling.json
else
    run_one bench_mt_scaling --json BENCH_mt_scaling.json
fi

{
    echo '{'
    echo "  \"quick\": $([ "$quick" = 1 ] && echo true || echo false),"
    echo '  "benches": {'
    n=${#status[@]}
    i=0
    for b in "${benches[@]}" bench_mt_scaling; do
        i=$((i + 1))
        sep=$([ "$i" -lt "$n" ] && echo , || echo '')
        echo "    \"$b\": \"${status[$b]}\"$sep"
    done
    echo '  }'
    echo '}'
} > BENCH_summary.json

echo
echo "== bench summary =="
for b in "${benches[@]}" bench_mt_scaling; do
    case "${status[$b]}" in
      ok)      printf '   PASS  %s\n' "$b" ;;
      missing) printf '   MISS  %s\n' "$b" ;;
      *)       printf '   FAIL  %s\n' "$b" ;;
    esac
done
echo
echo "wrote BENCH_summary.json ($([ "$failed" = 0 ] && echo all green || echo FAILURES))"
exit "$failed"
