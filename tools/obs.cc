/**
 * @file
 * `obs` — inspect the metrics snapshots the benches and examples dump
 * via HICAMP_OBS_METRICS (src/obs/export.cc, DESIGN.md §9).
 *
 * Usage:
 *   obs show  A.json             print one snapshot as a table
 *   obs diff  A.json B.json      per-counter delta B - A (clamped at
 *                                zero, like obs::delta); gauges show
 *                                the B value
 *
 * The parser handles exactly the JSON subset toJson() emits (objects,
 * strings, unsigned integers, arrays) plus whitespace — enough to
 * also read the `metrics` sub-objects inside BENCH_*.json rows when
 * they are extracted into a file. Exit status: 0 on success, 1 on a
 * parse/IO error, and for `diff` 2 when any counter went backwards
 * (a phase-reset bug: cumulative counters must never decrease).
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/** One parsed snapshot: flat name -> value maps per section. */
struct Snapshot {
    std::string registry;
    std::map<std::string, unsigned long long> counters;
    std::map<std::string, unsigned long long> gauges;
    // Histograms reduced to their count/sum scalars for display.
    std::map<std::string, unsigned long long> histCounts;
    std::map<std::string, unsigned long long> histSums;
};

/**
 * Minimal recursive-descent parser over the exporter's JSON subset.
 * Numbers are unsigned integers (the registry only holds uint64);
 * anything else is a parse error with a byte offset.
 */
class Parser
{
  public:
    explicit Parser(std::string text) : text_(std::move(text)) {}

    bool
    parse(Snapshot &out, std::string &err)
    {
        try {
            skipWs();
            expect('{');
            bool first = true;
            while (!peekIs('}')) {
                if (!first)
                    expect(',');
                first = false;
                std::string key = parseString();
                skipWs();
                expect(':');
                if (key == "registry") {
                    out.registry = parseString();
                } else if (key == "counters") {
                    parseScalarMap(out.counters);
                } else if (key == "gauges") {
                    parseScalarMap(out.gauges);
                } else if (key == "histograms") {
                    parseHistograms(out);
                } else {
                    skipValue();
                }
                skipWs();
            }
            expect('}');
            return true;
        } catch (const std::exception &e) {
            std::ostringstream os;
            os << e.what() << " at byte " << pos_;
            err = os.str();
            return false;
        }
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw std::runtime_error(what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char ch = text_[pos_++];
            if (ch == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'u':
                    // The exporter only emits \u00xx for control
                    // bytes; decode the low byte, skip the 4 digits.
                    if (pos_ + 4 > text_.size())
                        fail("short \\u escape");
                    s += static_cast<char>(std::stoi(
                        text_.substr(pos_ + 2, 2), nullptr, 16));
                    pos_ += 4;
                    break;
                  default: fail("unknown escape");
                }
            } else {
                s += ch;
            }
        }
        expect('"');
        return s;
    }

    unsigned long long
    parseUInt()
    {
        skipWs();
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            fail("expected unsigned integer");
        unsigned long long v = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            v = v * 10 + static_cast<unsigned long long>(
                             text_[pos_++] - '0');
        return v;
    }

    void
    parseScalarMap(std::map<std::string, unsigned long long> &out)
    {
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            std::string key = parseString();
            expect(':');
            out[key] = parseUInt();
        }
        expect('}');
    }

    void
    parseHistograms(Snapshot &out)
    {
        expect('{');
        bool first = true;
        while (!peekIs('}')) {
            if (!first)
                expect(',');
            first = false;
            std::string name = parseString();
            expect(':');
            std::map<std::string, unsigned long long> h;
            expect('{');
            bool hfirst = true;
            while (!peekIs('}')) {
                if (!hfirst)
                    expect(',');
                hfirst = false;
                std::string key = parseString();
                expect(':');
                if (key == "buckets") {
                    expect('[');
                    while (!peekIs(']')) {
                        parseUInt();
                        if (peekIs(','))
                            expect(',');
                    }
                    expect(']');
                } else {
                    h[key] = parseUInt();
                }
            }
            expect('}');
            out.histCounts[name] = h["count"];
            out.histSums[name] = h["sum"];
        }
        expect('}');
    }

    /** Skip any value of an unknown key (forward compatibility). */
    void
    skipValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("truncated value");
        char c = text_[pos_];
        if (c == '"') {
            parseString();
        } else if (c == '{' || c == '[') {
            char close = c == '{' ? '}' : ']';
            expect(c);
            while (!peekIs(close)) {
                skipValue();
                if (peekIs(','))
                    expect(',');
                else if (peekIs(':'))
                    expect(':');
            }
            expect(close);
        } else {
            parseUInt();
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
};

bool
load(const char *path, Snapshot &out)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "obs: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string err;
    if (!Parser(buf.str()).parse(out, err)) {
        std::fprintf(stderr, "obs: %s: %s\n", path, err.c_str());
        return false;
    }
    return true;
}

void
printSection(const char *title,
             const std::map<std::string, unsigned long long> &m)
{
    if (m.empty())
        return;
    std::printf("%s:\n", title);
    for (const auto &[name, v] : m)
        std::printf("  %-40s %llu\n", name.c_str(), v);
}

int
cmdShow(const char *path)
{
    Snapshot s;
    if (!load(path, s))
        return 1;
    std::printf("registry: %s\n", s.registry.c_str());
    printSection("counters", s.counters);
    printSection("gauges", s.gauges);
    if (!s.histCounts.empty()) {
        std::printf("histograms:\n");
        for (const auto &[name, cnt] : s.histCounts) {
            unsigned long long sum = s.histSums.at(name);
            std::printf("  %-40s count %llu, sum %llu, mean %.2f\n",
                        name.c_str(), cnt, sum,
                        cnt ? static_cast<double>(sum) /
                                  static_cast<double>(cnt)
                            : 0.0);
        }
    }
    return 0;
}

int
cmdDiff(const char *path_a, const char *path_b)
{
    Snapshot a, b;
    if (!load(path_a, a) || !load(path_b, b))
        return 1;
    int went_backwards = 0;
    std::printf("diff %s -> %s\n", path_a, path_b);
    std::printf("counters (delta):\n");
    for (const auto &[name, after] : b.counters) {
        auto it = a.counters.find(name);
        unsigned long long before = it == a.counters.end() ? 0
                                                           : it->second;
        if (after < before) {
            // Cumulative counters must never decrease between two
            // dumps of the same process; a drop means someone reset
            // mid-run.
            std::printf("  %-40s WENT BACKWARDS (%llu -> %llu)\n",
                        name.c_str(), before, after);
            went_backwards = 1;
        } else if (after != before) {
            std::printf("  %-40s +%llu\n", name.c_str(), after - before);
        }
    }
    for (const auto &[name, before] : a.counters) {
        if (b.counters.find(name) == b.counters.end())
            std::printf("  %-40s (dropped, was %llu)\n", name.c_str(),
                        before);
    }
    std::printf("gauges (value in %s):\n", path_b);
    for (const auto &[name, after] : b.gauges)
        std::printf("  %-40s %llu\n", name.c_str(), after);
    return went_backwards ? 2 : 0;
}

void
usage()
{
    std::fprintf(stderr, "usage: obs show A.json | obs diff A.json "
                         "B.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "show") == 0)
        return cmdShow(argv[2]);
    if (argc == 4 && std::strcmp(argv[1], "diff") == 0)
        return cmdDiff(argv[2], argv[3]);
    usage();
    return 1;
}
