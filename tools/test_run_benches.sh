#!/usr/bin/env bash
# Regression tests for tools/run_benches.sh, driven entirely from stub
# bench binaries in a scratch build tree so no real benchmarks run.
#
# Covers the two historical bugs:
#   1. a bench that printed a FAIL verdict row but exited 0 was
#      summarized as PASS and the suite exited 0;
#   2. outputs landed at the repo root even when the caller wanted a
#      scratch directory (--out-dir).
#
# Usage: tools/test_run_benches.sh [path-to-run_benches.sh]

set -eu

script=${1:-$(cd "$(dirname "$0")" && pwd)/run_benches.sh}
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

fails=0
check() {
    local desc=$1 ok=$2
    if [ "$ok" = 0 ]; then
        echo "PASS: $desc"
    else
        echo "FAIL: $desc"
        fails=1
    fi
}

all_benches=(
    bench_sec511_concurrency
    bench_fig6_memcached_dram
    bench_fig7_spmv_traffic
    bench_fig8_matrix_footprint
    bench_fig9_vm_scaling
    bench_fig10_tile_scaling
    bench_table1_memcached_compaction
    bench_table2_matrix_compaction
    bench_ablation_compaction
    bench_ablation_sharding
    bench_mt_scaling
    bench_server
)

make_stubs() {
    local dir=$1
    mkdir -p "$dir/bench"
    for b in "${all_benches[@]}"; do
        cat > "$dir/bench/$b" <<'EOF'
#!/usr/bin/env bash
echo "stub bench: all good"
echo "  metric   value   verdict"
echo "  dedup    0.42    PASS"
exit 0
EOF
        chmod +x "$dir/bench/$b"
    done
}

# --- case 1: everything green -> exit 0, summary all PASS ------------
build1=$scratch/build-green
out1=$scratch/out-green
make_stubs "$build1"
rc=0
"$script" --quick --build-dir "$build1" --out-dir "$out1" \
    > "$scratch/green.log" 2>&1 || rc=$?
check "green suite exits 0" "$rc"
grep -q '"bench_fig6_memcached_dram": "ok"' "$out1/BENCH_summary.json"
check "green summary records ok" $?

# --- case 2: a bench prints a FAIL verdict row but exits 0 -----------
build2=$scratch/build-verdict
out2=$scratch/out-verdict
make_stubs "$build2"
cat > "$build2/bench/bench_fig6_memcached_dram" <<'EOF'
#!/usr/bin/env bash
echo "  metric   value   verdict"
echo "  dedup    0.01    FAIL"
exit 0
EOF
chmod +x "$build2/bench/bench_fig6_memcached_dram"
rc=0
"$script" --quick --build-dir "$build2" --out-dir "$out2" \
    > "$scratch/verdict.log" 2>&1 || rc=$?
[ "$rc" -ne 0 ]
check "FAIL verdict row (exit 0) fails the suite" $?
grep -q '"bench_fig6_memcached_dram": "verdict-failed"' \
    "$out2/BENCH_summary.json"
check "summary records verdict-failed" $?
grep -Eq 'FAIL +bench_fig6_memcached_dram' "$scratch/verdict.log"
check "summary table row says FAIL" $?

# --- case 3: a bench exits non-zero ----------------------------------
build3=$scratch/build-crash
out3=$scratch/out-crash
make_stubs "$build3"
printf '#!/usr/bin/env bash\nexit 3\n' \
    > "$build3/bench/bench_fig9_vm_scaling"
chmod +x "$build3/bench/bench_fig9_vm_scaling"
rc=0
"$script" --quick --build-dir "$build3" --out-dir "$out3" \
    > /dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ]
check "non-zero bench exit fails the suite" $?

# --- case 4: a bench emits a truncated JSON artifact -----------------
build4=$scratch/build-badjson
out4=$scratch/out-badjson
make_stubs "$build4"
cat > "$build4/bench/bench_server" <<'EOF'
#!/usr/bin/env bash
# Consume --smoke --json PATH like the real bench, then truncate the
# artifact mid-object (a crash between fopen and the final brace).
while [ $# -gt 0 ]; do
    case "$1" in
      --json) shift; printf '{"bench": "server", "resul' > "$1" ;;
    esac
    shift
done
echo "stub bench: wrote a truncated artifact"
exit 0
EOF
chmod +x "$build4/bench/bench_server"
rc=0
"$script" --quick --build-dir "$build4" --out-dir "$out4" \
    > "$scratch/badjson.log" 2>&1 || rc=$?
[ "$rc" -ne 0 ]
check "truncated BENCH_*.json fails the suite" $?
grep -q 'BAD   BENCH_server.json' "$scratch/badjson.log"
check "validation names the bad artifact" $?

# --- case 5: --out-dir keeps everything out of the repo root ---------
found=$(find "$out1" -maxdepth 1 -name 'BENCH_*.json' | wc -l)
[ "$found" -ge 1 ]
check "--out-dir receives the BENCH_*.json artifacts" $?
[ -d "$out1/bench-logs" ]
check "--out-dir receives bench-logs/" $?

exit "$fails"
