/**
 * @file
 * `audit` — run a named workload on a fresh HICAMP machine, then dump
 * the heap auditor's full invariant report, once while the workload's
 * structures are still live and once after everything is torn down
 * (when any nonzero refcount is a leak). Exit status is non-zero if
 * either audit finds a violation, so the tool doubles as a CI check.
 *
 * Usage:
 *   audit [--workload smoke|map|memcached] [--items N] [--requests N]
 *         [--line-bytes 16|32|64] [--buckets N] [--no-compaction-check]
 *         [--overflow-cap N] [--max-live-lines N] [--refcount-bits N]
 *         [--fault-seed S] [--fault-alloc-p P] [--fault-alloc-every N]
 *         [--fault-flip-p P] [--fault-flip-every N]
 *
 * The fault flags drive the deterministic injector (common/fault.hh);
 * the capacity flags bound the line store so the workload can be
 * pushed into clean out-of-memory behaviour. Either way the tool
 * reports the pressure/contention counters and still demands a
 * leak-free heap afterwards.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/auditor.hh"
#include "common/cli.hh"
#include "common/status.hh"
#include "lang/context.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hstring.hh"
#include "seg/iterator.hh"
#include "workloads/memcached_workload.hh"
#include "workloads/webcorpus.hh"

namespace {

using namespace hicamp;

struct CliOptions {
    std::string workload = "smoke";
    std::uint64_t items = 200;
    std::uint64_t requests = 2000;
    unsigned lineBytes = 16;
    std::uint64_t buckets = 1 << 14;
    bool checkCompaction = true;
    std::uint64_t overflowCap = kUnlimited;
    std::uint64_t maxLiveLines = kUnlimited;
    unsigned refcountBits = 32;
    FaultConfig faults;
};

[[noreturn]] void
badUsage(cli::FlagSet &flags, const char *why)
{
    std::fprintf(stderr, "audit: %s\n", why);
    flags.usage(stderr);
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    cli::FlagSet flags("audit",
                       "run a named workload, then demand a clean "
                       "heap-invariant report (live + teardown)");
    flags.str("--workload", &o.workload, "smoke | map | memcached");
    flags.u64("--items", &o.items, "corpus size");
    flags.u64("--requests", &o.requests, "request-stream length");
    flags.u32("--line-bytes", &o.lineBytes, "line size: 16, 32 or 64");
    flags.u64("--buckets", &o.buckets, "hash-bucket (DRAM row) count");
    flags.u64("--overflow-cap", &o.overflowCap,
              "overflow-area line capacity");
    flags.u64("--max-live-lines", &o.maxLiveLines,
              "hard budget on live lines");
    flags.u32("--refcount-bits", &o.refcountBits,
              "refcount field width (2..32, saturating)");
    bool no_compaction_check = false;
    flags.toggle("--no-compaction-check", &no_compaction_check,
                 "skip the path/data compaction invariant");
    cli::addFaultFlags(flags, o.faults);
    flags.parse(argc, argv);
    o.checkCompaction = !no_compaction_check;
    if (o.items == 0 || o.buckets == 0)
        badUsage(flags, "--items and --buckets must be nonzero");
    if (o.refcountBits < 2 || o.refcountBits > 32)
        badUsage(flags, "--refcount-bits outside 2..32");
    if (o.lineBytes != 16 && o.lineBytes != 32 && o.lineBytes != 64)
        badUsage(flags, "--line-bytes must be 16, 32 or 64");
    if (o.workload != "smoke" && o.workload != "map" &&
        o.workload != "memcached")
        badUsage(flags, "unknown --workload");
    return o;
}

/** Audit while the workload's structures are still in scope. */
bool
auditLive(Hicamp &hc, const Auditor::Options &aopts)
{
    std::printf("\n== audit with live structures\n");
    AuditReport live = Auditor::audit(hc, aopts);
    live.print();
    return live.clean();
}

/** Mixed array/map/iterator exercise covering all structure layers. */
bool
runSmoke(Hicamp &hc, const CliOptions &o, const Auditor::Options &aopts)
{
    HArray<std::uint64_t> arr(hc);
    for (std::uint64_t i = 0; i < o.items; ++i)
        arr.set(i, i * 0x9e3779b97f4a7c15ull);
    HMap map(hc);
    for (std::uint64_t i = 0; i < o.items; ++i) {
        map.set(HString(hc, "key-" + std::to_string(i)),
                HString(hc, "value-" + std::to_string(i % 17)));
    }
    for (std::uint64_t i = 0; i < o.items; i += 3)
        map.erase(HString(hc, "key-" + std::to_string(i)));
    IteratorRegister it(hc.mem, hc.vsm);
    it.load(arr.vsid(), 0);
    while (it.next()) {
    }
    return auditLive(hc, aopts);
}

/** Pure HMap churn: set/overwrite/erase with deduplicating values. */
bool
runMap(Hicamp &hc, const CliOptions &o, const Auditor::Options &aopts)
{
    HMap map(hc);
    for (std::uint64_t r = 0; r < o.requests; ++r) {
        const std::uint64_t k = r % o.items;
        HString key(hc, "k" + std::to_string(k));
        if (r % 7 == 6) {
            map.erase(key);
        } else {
            map.set(key,
                    HString(hc, "payload-" + std::to_string(r % 31)));
        }
    }
    return auditLive(hc, aopts);
}

/** The paper's memcached trace replayed onto an HMap. */
bool
runMemcached(Hicamp &hc, const CliOptions &o,
             const Auditor::Options &aopts)
{
    WebCorpus::Params cp;
    cp.numItems = o.items;
    cp.maxBytes = 2048;
    auto items = WebCorpus::generate(cp);
    McWorkloadParams mp;
    mp.numRequests = o.requests;
    auto reqs = generateMcRequests(items, mp);

    HMap map(hc);
    for (const auto &it : items)
        map.set(HString(hc, it.key), HString(hc, it.payload));
    for (const auto &r : reqs) {
        HString key(hc, items[r.itemIndex].key);
        switch (r.op) {
          case McRequest::Op::Get:
            map.get(key);
            break;
          case McRequest::Op::Set:
            map.set(key, HString(hc, r.newValue));
            break;
          case McRequest::Op::Delete:
            map.erase(key);
            break;
        }
    }
    return auditLive(hc, aopts);
}

} // namespace

void
printPressure(Hicamp &hc)
{
    std::printf("\n== pressure / contention counters\n");
    for (const auto &[name, value] : hc.mem.pressureStats().snapshot()) {
        std::printf("  %-24s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    }
    const FaultInjector &fi = hc.mem.faults();
    if (fi.config().anyEnabled()) {
        std::printf("  %-24s %llu\n", "faults_alloc_injected",
                    static_cast<unsigned long long>(
                        fi.allocFailsInjected()));
        std::printf("  %-24s %llu\n", "faults_flips_injected",
                    static_cast<unsigned long long>(
                        fi.bitFlipsInjected()));
    }
}

int
main(int argc, char **argv)
{
    CliOptions o = parseArgs(argc, argv);

    MemoryConfig cfg;
    cfg.lineBytes = o.lineBytes;
    cfg.numBuckets = o.buckets;
    cfg.overflowCapacity = o.overflowCap;
    cfg.maxLiveLines = o.maxLiveLines;
    cfg.refcountBits = o.refcountBits;
    cfg.faults = o.faults;
    Hicamp hc(cfg);

    Auditor::Options aopts;
    aopts.checkCompaction = o.checkCompaction;

    std::printf("== workload: %s (items=%llu requests=%llu "
                "line=%uB buckets=%llu)\n",
                o.workload.c_str(),
                static_cast<unsigned long long>(o.items),
                static_cast<unsigned long long>(o.requests),
                o.lineBytes,
                static_cast<unsigned long long>(o.buckets));
    bool clean;
    bool pressured = false;
    try {
        if (o.workload == "smoke") {
            clean = runSmoke(hc, o, aopts);
        } else if (o.workload == "map") {
            clean = runMap(hc, o, aopts);
        } else if (o.workload == "memcached") {
            clean = runMemcached(hc, o, aopts);
        } else {
            std::abort(); // unreachable: parseArgs validated the name
        }
    } catch (const MemPressureError &e) {
        // The graceful-degradation contract: the workload surfaces a
        // typed error instead of aborting, and the rollback left no
        // leaked lines (the teardown audit below proves it).
        std::printf("\nworkload stopped by memory pressure: %s (%s)\n",
                    memStatusName(e.status()), e.what());
        pressured = true;
        clean = true;
    }

    // Structures are destroyed; every surviving refcount is a leak.
    std::printf("\n== audit after teardown\n");
    AuditReport post = Auditor::audit(hc, aopts);
    post.print();
    clean = clean && post.clean();

    printPressure(hc);
    if (pressured)
        std::printf("\n(out-of-memory handled cleanly; exit reflects "
                    "audit verdict only)\n");

    return clean ? 0 : 1;
}
