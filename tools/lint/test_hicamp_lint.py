#!/usr/bin/env python3
"""Tests for hicamp_lint.py.

Each fixture under fixtures/ marks its intentional violations with a
``// EXPECT-LINE: <rule>`` comment on the offending line; the tests
run the lint as a subprocess and assert the reported (line, rule)
set matches the markers exactly — so a missed violation, a spurious
finding, or a broken waiver all fail.  Run directly or via ctest
(``lint_fixtures``).
"""

import os
import re
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "hicamp_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
ROOT = os.path.dirname(os.path.dirname(HERE))

EXPECT_RE = re.compile(r"//\s*EXPECT-LINE:\s*([\w-]+)")
FINDING_RE = re.compile(r"^(.*):(\d+): \[([\w-]+)\] (.*)$")


def run_lint(*argv):
    proc = subprocess.run(
        [sys.executable, LINT, *argv],
        capture_output=True, text=True)
    return proc


def findings_of(stdout, path=None):
    """Parse 'path:line: [rule] msg' lines -> {(path, line, rule)}."""
    out = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m and (path is None or m.group(1) == path):
            out.add((m.group(1), int(m.group(2)), m.group(3)))
    return out


def expected_of(path):
    out = set()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            m = EXPECT_RE.search(line)
            if m:
                out.add((path, lineno, m.group(1)))
    return out


class FixtureTests(unittest.TestCase):
    """One file-rule fixture per test: run the lint on the fixture
    alone (lock-order skipped) and compare against its markers."""

    def assert_fixture(self, name):
        path = os.path.join(FIXTURES, name)
        expected = expected_of(path)
        self.assertTrue(expected, f"{name} has no EXPECT-LINE markers")
        proc = run_lint("--no-lock-order", path)
        self.assertEqual(proc.returncode, 1,
                         f"lint should exit 1 on {name}:\n"
                         f"{proc.stdout}{proc.stderr}")
        got = findings_of(proc.stdout, path)
        self.assertEqual(got, expected,
                         f"findings for {name} differ from the "
                         f"EXPECT-LINE markers:\n{proc.stdout}")

    def test_leaky_retain(self):
        # Flags the unbalanced tryRetain; the balanced, the
        # ownership-returning, and the waived functions stay silent.
        self.assert_fixture("leaky_retain.cc")

    def test_bad_assert(self):
        # ++, assignment, and a mutating member call inside
        # HICAMP_DEBUG_ASSERT; the comparison controls stay silent.
        self.assert_fixture("bad_assert.cc")

    def test_relaxed_condition(self):
        # Relaxed loads in if/while conditions; the acquire load and
        # the relaxed-ok-waived load stay silent.
        self.assert_fixture("relaxed_condition.cc")

    def test_epoch_stripe(self):
        # Stripe/mutex guards constructed under a live EpochGuard;
        # the close-then-lock fallback shape and the waived site stay
        # silent.
        self.assert_fixture("epoch_stripe.cc")

    def test_unregistered_counter(self):
        # Counter members without registration or waiver; the waived
        # one and the block under a single waiver stay silent, and
        # registry words in comments don't count as registration.
        self.assert_fixture("unregistered_counter.cc")


class LockOrderTests(unittest.TestCase):
    def test_order_mismatch_reported(self):
        header = os.path.join(FIXTURES, "order_bad_header.hh")
        doc = os.path.join(FIXTURES, "order_bad_doc.md")
        proc = run_lint("--order-header", header,
                        "--order-doc", doc, header)
        self.assertEqual(proc.returncode, 1,
                         f"{proc.stdout}{proc.stderr}")
        got = findings_of(proc.stdout)
        self.assertIn((doc, 6, "lock-order"), got,
                      f"mismatch not reported at {doc}:6:\n"
                      f"{proc.stdout}")
        self.assertIn("does not match", proc.stdout)

    def test_real_order_is_consistent(self):
        # The shipped DESIGN.md declaration and the anchor chain in
        # thread_annotations.hh agree: a clean control for the rule.
        header = os.path.join(
            ROOT, "src", "common", "thread_annotations.hh")
        proc = run_lint("--order-header", header,
                        "--order-doc", os.path.join(ROOT, "DESIGN.md"),
                        header)
        self.assertEqual(proc.returncode, 0,
                         f"{proc.stdout}{proc.stderr}")


class CleanRunTests(unittest.TestCase):
    def test_registered_counter_file_is_trusted(self):
        # A registerMetrics reference in code trusts the whole file.
        path = os.path.join(FIXTURES, "registered_counter.cc")
        proc = run_lint("--no-lock-order", path)
        self.assertEqual(proc.returncode, 0,
                         f"{proc.stdout}{proc.stderr}")
        self.assertEqual(findings_of(proc.stdout), set())

    def test_clean_file_exits_zero(self):
        header = os.path.join(
            ROOT, "src", "common", "thread_annotations.hh")
        proc = run_lint("--no-lock-order", header)
        self.assertEqual(proc.returncode, 0,
                         f"{proc.stdout}{proc.stderr}")
        self.assertEqual(findings_of(proc.stdout), set())

    def test_raii_bodies_are_deferred_to_refcount_checker(self):
        # Acquires handed to PlidRef/OwnedEntries have no release
        # primitive and no value return, but the RAII layer balances
        # them; retain-balance must stay silent (the path-sensitive
        # refcount checker owns those bodies).
        path = os.path.join(FIXTURES, "plidref_raii.cc")
        proc = run_lint("--no-lock-order", path)
        self.assertEqual(proc.returncode, 0,
                         f"{proc.stdout}{proc.stderr}")
        self.assertEqual(findings_of(proc.stdout), set())

    def test_missing_file_is_usage_error(self):
        proc = run_lint("--no-lock-order",
                        os.path.join(FIXTURES, "no_such_file.cc"))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
