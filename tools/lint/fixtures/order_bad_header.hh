// Lint fixture: a LockRank anchor chain whose order contradicts the
// documented one in order_bad_doc.md (stripe before vsm) — the
// lock-order rule must report the mismatch.
#define HICAMP_ACQUIRED_AFTER(x)

class LockRank
{
};

namespace lockrank {
inline LockRank stripe;
inline LockRank vsm HICAMP_ACQUIRED_AFTER(stripe);
inline LockRank leaf HICAMP_ACQUIRED_AFTER(vsm);
} // namespace lockrank
