// Fixture for the stat-registry rule. This file never references the
// registry in code — the words registerMetrics and MetricsRegistry in
// this comment must NOT count as registration — so every counter
// member needs a stat-ok waiver.

class UnregisteredStats
{
  private:
    Counter hits_;         // EXPECT-LINE: stat-registry
    AtomicCounter misses_; // EXPECT-LINE: stat-registry

    // hicamp-lint: stat-ok(test-local scratch counter)
    Counter waived_;

    // hicamp-lint: stat-ok(one waiver covers the contiguous block)
    ShardedCounter blockA_;
    ShardedCounter blockB_;
};
