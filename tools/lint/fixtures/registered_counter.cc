// Clean control for the stat-registry rule: a file that participates
// in registration (a registerMetrics member, in code) is trusted
// wholesale, so its counter members need no waivers.

class RegisteredStats
{
  public:
    void registerMetrics(obs::MetricsRegistry &reg);

  private:
    Counter hits_;
    Counter misses_;
};
