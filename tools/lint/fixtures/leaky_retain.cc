// Lint fixture: a pure reference leak. publishWeakly() acquires a
// reference with tryRetain, never releases it, and returns nothing —
// the retain-balance rule must flag the tryRetain call site.
#include <cstdint>

struct Mem {
    bool tryRetain(std::uint64_t plid);
    void incRef(std::uint64_t plid);
    void decRef(std::uint64_t plid);
};

// EXPECT retain-balance @ publishWeakly
void
publishWeakly(Mem &m, std::uint64_t plid)
{
    if (m.tryRetain(plid)) { // EXPECT-LINE: retain-balance
        // ... forgot to record ownership anywhere; the reference is
        // unreachable from here on.
    }
}

// Balanced control: same acquire, matching release — no finding.
void
touch(Mem &m, std::uint64_t plid)
{
    if (m.tryRetain(plid))
        m.decRef(plid);
}

// Ownership-transfer control: the returned value owns the reference.
std::uint64_t
pin(Mem &m, std::uint64_t plid)
{
    m.incRef(plid);
    return plid;
}

// Waived control: justified RAII-style site — no finding.
void
adopt(Mem &m, std::uint64_t plid)
{
    // hicamp-lint: retain-ok(fixture: pretend a member handle owns it)
    m.incRef(plid);
}
