// Lint fixture: a relaxed atomic load steering control flow on a
// field that carries no HICAMP_ATOMIC_* role and no waiver — the
// relaxed-control rule must flag it.  Role-annotated fields are
// deferred to tools/analyze/atomic_check.py and must stay silent
// here.
#include <atomic>

std::atomic<bool> ready{false};
std::atomic<int> pending{0};
// Role-annotated: owned by atomic_check, not relaxed-control.
HICAMP_ATOMIC_COUNTER std::atomic<int> ticks{0};

int
consume()
{
    if (ready.load(std::memory_order_relaxed)) // EXPECT-LINE: relaxed-control
        return pending.load(std::memory_order_acquire);
    while (pending.load(std::memory_order_relaxed) < 4) { // EXPECT-LINE: relaxed-control
    }
    return -1;
}

int
consumeOk()
{
    // Acquire in the condition: clean.
    if (ready.load(std::memory_order_acquire))
        return 1;
    // hicamp-lint: relaxed-ok(fixture: pretend an outer lock serializes)
    if (pending.load(std::memory_order_relaxed) > 0)
        return 2;
    // Deferred: ticks has a role annotation, so the role-aware
    // checker classifies this load (relaxed is the counter contract).
    if (ticks.load(std::memory_order_relaxed) > 8)
        return 3;
    return 0;
}
