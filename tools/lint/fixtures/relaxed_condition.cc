// Lint fixture: a relaxed atomic load steering control flow in a
// file that is not on the blessed list and carries no waiver — the
// relaxed-control rule must flag it.
#include <atomic>

std::atomic<bool> ready{false};
std::atomic<int> count{0};

int
consume()
{
    if (ready.load(std::memory_order_relaxed)) // EXPECT-LINE: relaxed-control
        return count.load(std::memory_order_acquire);
    while (count.load(std::memory_order_relaxed) < 4) { // EXPECT-LINE: relaxed-control
    }
    return -1;
}

int
consumeOk()
{
    // Acquire in the condition: clean.
    if (ready.load(std::memory_order_acquire))
        return 1;
    // hicamp-lint: relaxed-ok(fixture: pretend an outer lock serializes)
    if (count.load(std::memory_order_relaxed) > 0)
        return 2;
    return 0;
}
