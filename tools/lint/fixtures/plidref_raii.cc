// retain-balance control: a body that acquires references but hands
// them to the RAII ownership layer (PlidRef / OwnedEntries) has no
// release primitive and no value return — yet it is NOT a leak; the
// destructors balance it.  The rule must defer such bodies to the
// path-sensitive tools/analyze/refcount_check.py instead of flagging
// (or demanding a retain-ok waiver from) them.
#include "mem/plid_ref.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

void
raiiAcquireIsNotALeak(Memory &mem, Plid p)
{
    PlidRef held = PlidRef::acquire(mem, p);
    publish(held.get());
}

void
raiiGuardOwnsChildren(SegBuilder &b, const Entry *kids, unsigned n)
{
    OwnedEntries guard(b);
    for (unsigned i = 0; i < n; ++i)
        guard.push(b.retain(kids[i]));
}

} // namespace hicamp
