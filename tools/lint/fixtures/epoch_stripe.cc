// epoch-guard fixture: lock-guard constructions inside and outside
// EpochGuard scopes.  Token-level lint input — never compiled.

#include "common/thread_annotations.hh"
#include "mem/epoch.hh"

namespace hicamp {

extern StripeBank stripes;
extern CapMutex mapMutex;
extern EpochManager domain;

// Stripe taken while the pin is live: the §12 violation.
unsigned
badStripeUnderPin(unsigned s)
{
    EpochGuard eg(domain);
    StripeExclusive g(stripes, s); // EXPECT-LINE: epoch-guard
    return s;
}

// Shared stripes and plain mutex guards are violations too.
unsigned
badSharedAndMutexUnderPin(unsigned s)
{
    EpochGuard eg(domain);
    {
        StripeShared g(stripes, s); // EXPECT-LINE: epoch-guard
    }
    CapLockGuard m(mapMutex); // EXPECT-LINE: epoch-guard
    return s;
}

// The guard's block closes before the stripe is taken: legal, and
// exactly the shape of the probe-then-lock fallback in line_store.cc.
unsigned
goodProbeThenLock(unsigned s, bool fast)
{
    if (fast) {
        EpochGuard eg(domain);
        return s;
    }
    StripeExclusive g(stripes, s);
    return s + 1;
}

// A justified exception stays silent with a reasoned waiver.
unsigned
waivedUnderPin(unsigned s)
{
    EpochGuard eg(domain);
    // hicamp-lint: epoch-guard-ok(drain path owns the stripe already)
    StripeExclusive g(stripes, s);
    return s;
}

} // namespace hicamp
