// Lint fixture: side effects inside HICAMP_DEBUG_ASSERT, which is
// compiled out of release builds. Each marked line must be reported
// by the assert-side-effect rule.
#include <atomic>
#include <cstdint>

#define HICAMP_DEBUG_ASSERT(cond, msg) ((void)0)

void
checks(std::uint64_t n, std::atomic<std::uint64_t> &a)
{
    std::uint64_t i = 0;
    HICAMP_DEBUG_ASSERT(i++ < n, "increments in debug-only code"); // EXPECT-LINE: assert-side-effect
    HICAMP_DEBUG_ASSERT((i = n) != 0, "assignment, not comparison"); // EXPECT-LINE: assert-side-effect
    HICAMP_DEBUG_ASSERT(a.fetch_add(1) < n, "mutating member call"); // EXPECT-LINE: assert-side-effect

    // Clean controls: comparisons and const calls are fine.
    HICAMP_DEBUG_ASSERT(i <= n, "comparison");
    HICAMP_DEBUG_ASSERT(a.load() >= i, "const-ish read");
}
