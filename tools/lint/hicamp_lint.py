#!/usr/bin/env python3
"""HICAMP-specific lint: the concurrency-protocol rules clang's
Thread Safety Analysis cannot express (ISSUE: capability-checked
concurrency; DESIGN.md §8).

Rules
-----
retain-balance
    A function body that acquires line references (``retain(``,
    ``tryRetain(``, ``incRefIfLive(``, ``incRef(``, ``addRef(``) must
    either contain a matching release primitive (``release``,
    ``decRef``, ``releaseSnapshot``, ``releaseSeg``, ``retire``,
    ``freeLine``) or transfer ownership out (a value-returning
    ``return`` — the repo-wide convention is that returned
    Entry/Plid/SegDesc values own their references).  A body that
    acquires, never releases and returns nothing is a leak on every
    path; that is what this rule flags, function granularity being the
    deliberate over-approximation a token-level pass can check
    deterministically.  Waive a site with
    ``// hicamp-lint: retain-ok(<reason>)`` on the call's line or the
    line above.  Bodies built on the RAII ownership layer (``PlidRef``
    / ``EntryRef`` / ``OwnedEntries``, DESIGN.md §10) are skipped:
    the path-sensitive checker ``tools/analyze/refcount_check.py``
    owns those, and reporting them here twice would force double
    waivers.

assert-side-effect
    ``HICAMP_DEBUG_ASSERT`` is compiled out of release builds, so any
    side effect inside its condition changes behavior between build
    types.  Flags ``++``/``--``, plain assignment, and calls to known
    mutating members (``store``, ``fetch_add``, ``push_back``,
    ``erase``, ...) inside the macro's argument list.

relaxed-control
    A ``std::memory_order_relaxed`` load inside an ``if``/``while``
    condition is only sound when some outer serialization or an
    immutability contract backs it.  The files whose every such read
    is lock-serialized or reads immutable-after-publication fields are
    blessed below; everywhere else the pattern needs
    ``// hicamp-lint: relaxed-ok(<reason>)`` on the line or the line
    above.

stat-registry
    Every ``Counter``/``AtomicCounter``/``ShardedCounter`` member
    declared outside ``src/obs/`` (and the primitives' own home,
    ``src/common/stats.hh``) must be reachable through the metrics
    registry: the declaring file references ``MetricsRegistry``,
    ``registerMetrics`` or ``addCounter`` in code, or the declaration
    carries ``// hicamp-lint: stat-ok(<reason>)`` on the line, in the
    comment run above it, or above the first declaration of its
    contiguous declaration block (one waiver covers the group).
    Unregistered counters are invisible to metrics dumps and to the
    phase snapshot/delta discipline — exactly how the pre-registry
    stats plumbing rotted.

epoch-guard
    No lock acquisition inside an epoch-pinned read section
    (DESIGN.md §12): constructing a ``StripeExclusive``,
    ``StripeShared`` or ``CapLockGuard`` lexically inside the scope of
    a live ``EpochGuard`` is flagged.  Read sections must be lock-free
    — a stripe taken under a pin could wait on a writer whose limbo
    flush needs the grace period to expire, and the declared rank
    order (stripe < epoch) forbids the inversion.  TSA enforces this
    on capability-annotated paths; this rule covers the files and
    template bodies the analysis cannot see.  Leaf-rank guards
    (spinlocks, seqlocks) are legal under a pin and stay silent.
    Waive with ``// hicamp-lint: epoch-guard-ok(<reason>)`` on the
    line or the line above.

lock-order
    The ``ACQUIRED_AFTER`` chain declared on the LockRank anchors in
    ``src/common/thread_annotations.hh`` must match the machine-
    readable order declared in DESIGN.md
    (``<!-- hicamp-lock-order: a < b < c -->``), and every rank must
    actually be co-acquired by at least one guard in ``src/``.

Engine: token-level by default; uses libclang for exact function
extents when the ``clang`` python bindings are importable (they are
not baked into the CI image, so the token engine is the reference).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# Role-annotated atomic fields (DESIGN.md §13) belong to the
# path-aware tools/analyze/atomic_check.py, not this rule: that
# checker classifies every access against the field's declared
# HICAMP_ATOMIC_* role, so a relaxed load of an annotated field is
# either legal there (counter/seqlock roles) or flagged there with a
# role-specific message.  Same handoff pattern as retain-balance ->
# refcount_check.  The harvest below collects the annotated names
# once per run; an un-annotated atomic in a condition is still ours.
ATOMIC_ROLE_DECL_RE = re.compile(
    r"\bHICAMP_ATOMIC_(?:PUBLISH|CLAIM_CAS|COUNTER|SEQLOCK|EPOCH|"
    r"FLAG)\b[^;{}]*?(\w+)\s*[;={[(]")

_ATOMIC_ROLE_NAMES = None


def atomic_role_names(root):
    """Field names carrying a HICAMP_ATOMIC_* role under src/."""
    global _ATOMIC_ROLE_NAMES
    if _ATOMIC_ROLE_NAMES is None:
        names = set()
        src = os.path.join(root, "src")
        if os.path.isdir(src):
            for dirpath, _, files in os.walk(src):
                for f in sorted(files):
                    if not f.endswith((".hh", ".cc")):
                        continue
                    text = open(os.path.join(dirpath, f),
                                encoding="utf-8").read()
                    stripped = strip_comments_and_strings(text)
                    for m in ATOMIC_ROLE_DECL_RE.finditer(stripped):
                        names.add(m.group(1))
        _ATOMIC_ROLE_NAMES = names
    return _ATOMIC_ROLE_NAMES

ACQUIRE_RE = re.compile(
    r"\b(?:retain|tryRetain|incRefIfLive|incRef|addRef)\s*\(")
RELEASE_RE = re.compile(
    r"\b(?:release|releaseSeg|releaseSnapshot|releaseAll|decRef|"
    r"retire|freeLine)\s*\(")
VALUE_RETURN_RE = re.compile(r"\breturn\s+[^;]")
RETAIN_WAIVER_RE = re.compile(r"hicamp-lint:\s*retain-ok\(")
# RAII ownership vocabulary (DESIGN.md §10): bodies using it belong to
# the path-sensitive tools/analyze/refcount_check.py, not this rule.
RAII_VOCAB_RE = re.compile(
    r"\b(?:PlidRef|EntryRef|OwnedEntries)\b")
RELAXED_WAIVER_RE = re.compile(r"hicamp-lint:\s*relaxed-ok\(")
RELAXED_LOAD_RE = re.compile(
    r"\.\s*(?:load|test)\s*\(\s*std::memory_order_relaxed\s*\)")
CONTROL_HEAD_RE = re.compile(r"\b(?:if|while)\s*\($")

MUTATOR_CALL_RE = re.compile(
    r"\.\s*(?:store|exchange|compare_exchange_\w+|fetch_add|fetch_sub|"
    r"fetch_or|fetch_and|push_back|pop_back|emplace\w*|insert|erase|"
    r"clear|reset|release|swap)\s*\(")
INC_DEC_RE = re.compile(r"\+\+|--")

EPOCH_GUARD_DECL_RE = re.compile(r"\bEpochGuard\s+\w+\s*[({]")
EPOCH_LOCK_CTOR_RE = re.compile(
    r"\b(StripeExclusive|StripeShared|CapLockGuard)\s+\w+\s*[({]")
EPOCH_WAIVER_RE = re.compile(r"hicamp-lint:\s*epoch-guard-ok\(")

STAT_DECL_RE = re.compile(
    r"^\s*(?:ShardedCounter|AtomicCounter|Counter)\s+\w")
STAT_WAIVER_RE = re.compile(r"hicamp-lint:\s*stat-ok\(")
STAT_REGISTRY_RE = re.compile(
    r"\bMetricsRegistry\b|\bregisterMetrics\b|\baddCounter\b")
STAT_EXEMPT = {"src/common/stats.hh"}

DEFAULT_ORDER_DOC = "DESIGN.md"
DEFAULT_ORDER_HEADER = "src/common/thread_annotations.hh"
ORDER_DECL_RE = re.compile(r"<!--\s*hicamp-lock-order:\s*([^>]+?)\s*-->")
ANCHOR_RE = re.compile(
    r"^\s*inline\s+LockRank\s+(\w+)\s*"
    r"(?:HICAMP_ACQUIRED_AFTER\((\w+)\))?\s*;")



def _waived_at(raw_lines, lineno, waiver_re):
    """True if the waiver marker sits on the flagged line or in the
    contiguous run of // comment lines directly above it."""
    if 1 <= lineno <= len(raw_lines) and \
            waiver_re.search(raw_lines[lineno - 1]):
        return True
    ln = lineno - 1
    while 1 <= ln <= len(raw_lines) and \
            raw_lines[ln - 1].lstrip().startswith("//"):
        if waiver_re.search(raw_lines[ln - 1]):
            return True
        ln -= 1
    return False


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token scans don't match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def function_bodies_tokens(code):
    """Yield (start_line, body_text) for every top-level-ish brace
    block that follows a ``)`` — i.e. function definitions.  Brace
    matching over comment-stripped text; nested blocks stay inside
    their function's body."""
    bodies = []
    depth = 0
    i, n = 0, len(code)
    line = 1
    last_nonspace = ""
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
        elif c == "{":
            if last_nonspace == ")" and depth >= 0:
                # find the matching close brace
                j, d, l2 = i + 1, 1, line
                while j < n and d:
                    if code[j] == "\n":
                        l2 += 1
                    elif code[j] == "{":
                        d += 1
                    elif code[j] == "}":
                        d -= 1
                    j += 1
                bodies.append((line, code[i + 1:j - 1]))
                line = l2
                i = j
                last_nonspace = "}"
                continue
            depth += 1
        elif c == "}":
            depth -= 1
        if not c.isspace():
            last_nonspace = c
        i += 1
    return bodies


def function_bodies_libclang(path):
    """Exact function extents via libclang, when the bindings exist.
    Returns None (fall back to tokens) on any failure — the bindings
    are optional and absent from the CI image."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-Isrc"])
        code = strip_comments_and_strings(
            open(path, encoding="utf-8").read())
        lines = code.splitlines()
        bodies = []
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FUNCTION_DECL,
                            cindex.CursorKind.CXX_METHOD,
                            cindex.CursorKind.FUNCTION_TEMPLATE) \
                    and cur.is_definition() \
                    and cur.location.file \
                    and cur.location.file.name == path:
                lo = cur.extent.start.line
                hi = cur.extent.end.line
                bodies.append((lo, "\n".join(lines[lo - 1:hi])))
        return bodies
    except Exception:
        return None


def line_of_offset(text, off):
    return text.count("\n", 0, off) + 1


def check_retain_balance(path, raw, code, findings):
    raw_lines = raw.splitlines()

    def waived(lineno):
        return _waived_at(raw_lines, lineno, RETAIN_WAIVER_RE)

    bodies = function_bodies_libclang(path) or \
        function_bodies_tokens(code)
    for start_line, body in bodies:
        if RAII_VOCAB_RE.search(body):
            continue  # owned by the path-sensitive refcount checker
        acquires = []
        has_negative_addref = False
        for m in ACQUIRE_RE.finditer(body):
            if m.group(0).startswith("addRef"):
                # addRef(plid, -1) is the release direction
                arg = macro_argument(body, m.end() - 1) or ""
                if re.search(r",\s*-", arg):
                    has_negative_addref = True
                    continue
            acquires.append(m)
        if not acquires:
            continue
        if has_negative_addref or RELEASE_RE.search(body) or \
                VALUE_RETURN_RE.search(body):
            continue
        for m in acquires:
            lineno = start_line + body.count("\n", 0, m.start())
            if waived(lineno):
                continue
            findings.append(Finding(
                path, lineno, "retain-balance",
                f"'{m.group(0).rstrip('(').strip()}' acquires a "
                "reference in a function with no release primitive "
                "and no ownership-transferring return; balance it or "
                "waive with // hicamp-lint: retain-ok(reason)"))


def macro_argument(code, open_paren):
    """Text between a macro's balanced parens, or None if unbalanced."""
    d = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            d += 1
        elif code[j] == ")":
            d -= 1
            if d == 0:
                return code[open_paren + 1:j]
    return None


def check_assert_side_effects(path, code, findings):
    for m in re.finditer(r"\bHICAMP_DEBUG_ASSERT\s*\(", code):
        arg = macro_argument(code, m.end() - 1)
        if arg is None:
            continue
        # drop the trailing ", message" argument: side effects in the
        # (never-evaluated-twice) message literal cannot exist once
        # strings are stripped, and commas inside parens are nested
        cond = arg
        depth = 0
        for k, ch in enumerate(arg):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                cond = arg[:k]
                break
        reasons = []
        if INC_DEC_RE.search(cond):
            reasons.append("++/-- operator")
        if MUTATOR_CALL_RE.search(cond):
            reasons.append("mutating member call")
        if re.search(r"(?<![=!<>+\-*/&|^])=(?!=)", cond):
            reasons.append("assignment")
        if reasons:
            findings.append(Finding(
                path, line_of_offset(code, m.start()),
                "assert-side-effect",
                "HICAMP_DEBUG_ASSERT condition has a side effect "
                f"({', '.join(reasons)}); debug asserts vanish in "
                "release builds, so the effect does too"))


def check_relaxed_control(root, path, rel, raw, code, findings):
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    # Names the role-aware atomic checker owns: annotations harvested
    # repo-wide plus any declared in the linted file itself (fixture
    # runs outside src/ stay hermetic).
    deferred = atomic_role_names(root) | {
        m.group(1) for m in ATOMIC_ROLE_DECL_RE.finditer(code)}

    def waived(lineno):
        return _waived_at(raw_lines, lineno, RELAXED_WAIVER_RE)

    # A control condition may span lines; walk each if/while and its
    # balanced parens.
    for m in re.finditer(r"\b(if|while)\s*\(", code):
        cond = macro_argument(code, m.end() - 1)
        if cond is None:
            continue
        rm = RELAXED_LOAD_RE.search(cond)
        if not rm:
            continue
        # The loaded object's trailing identifier (subscripts
        # stripped, so liveMask_[b] resolves to liveMask_); annotated
        # fields are classified by tools/analyze/atomic_check.py.
        nm = re.search(r"(\w+)\s*(?:\[[^][]*\]\s*)*$", cond[:rm.start()])
        if nm and nm.group(1) in deferred:
            continue
        lineno = line_of_offset(code, m.end() - 1 + 1 + rm.start())
        if waived(lineno):
            continue
        findings.append(Finding(
            path, lineno, "relaxed-control",
            "relaxed atomic load feeds a control decision; use "
            "acquire, annotate the field's HICAMP_ATOMIC_* role for "
            "tools/analyze/atomic_check.py, or prove serialization "
            "and waive with // hicamp-lint: relaxed-ok(reason)"))
    _ = code_lines  # structure kept for libclang parity


def balanced_extent_end(code, open_off):
    """Offset just past the closer matching the bracket at open_off."""
    open_ch = code[open_off]
    close_ch = ")" if open_ch == "(" else "}"
    d = 0
    for j in range(open_off, len(code)):
        if code[j] == open_ch:
            d += 1
        elif code[j] == close_ch:
            d -= 1
            if d == 0:
                return j + 1
    return len(code)


def check_epoch_guard(path, raw, code, findings):
    raw_lines = raw.splitlines()
    seen = set()
    for m in EPOCH_GUARD_DECL_RE.finditer(code):
        # Skip the constructor's own argument list, then walk to the
        # close of the enclosing block: that is the guard's lifetime.
        start = balanced_extent_end(code, m.end() - 1)
        depth = 0
        end = len(code)
        for k in range(start, len(code)):
            c = code[k]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth < 0:
                    end = k
                    break
        for lm in EPOCH_LOCK_CTOR_RE.finditer(code, start, end):
            lineno = line_of_offset(code, lm.start())
            if (lineno, lm.group(1)) in seen:
                continue  # nested guards: report once
            seen.add((lineno, lm.group(1)))
            if _waived_at(raw_lines, lineno, EPOCH_WAIVER_RE):
                continue
            findings.append(Finding(
                path, lineno, "epoch-guard",
                f"'{lm.group(1)}' constructed inside an EpochGuard "
                "scope; epoch read sections are lock-free (§12, rank "
                "stripe < epoch) — close the guard first or waive "
                "with // hicamp-lint: epoch-guard-ok(reason)"))


def check_stat_registry(path, rel, raw, code, findings):
    if rel in STAT_EXEMPT or rel.startswith("src/obs/"):
        return
    # A file that participates in registration is trusted wholesale;
    # the reference must be in code, not in a comment.
    if STAT_REGISTRY_RE.search(code):
        return
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    for idx, line in enumerate(code_lines):
        if not STAT_DECL_RE.match(line):
            continue
        lineno = idx + 1
        # One waiver comment above the first declaration covers the
        # whole contiguous declaration block.
        first = idx
        while first > 0 and STAT_DECL_RE.match(code_lines[first - 1]):
            first -= 1
        if _waived_at(raw_lines, lineno, STAT_WAIVER_RE) or \
                _waived_at(raw_lines, first + 1, STAT_WAIVER_RE):
            continue
        findings.append(Finding(
            path, lineno, "stat-registry",
            "counter member in a file with no MetricsRegistry/"
            "registerMetrics/addCounter reference; register it or "
            "waive with // hicamp-lint: stat-ok(reason)"))


def parse_anchor_chain(header_text):
    """LockRank anchors in declaration form -> ordered rank list.
    Returns (order, errors); order is outermost-first."""
    after = {}
    names = []
    for line in header_text.splitlines():
        m = ANCHOR_RE.match(line)
        if m:
            names.append(m.group(1))
            if m.group(2):
                after[m.group(1)] = m.group(2)
    errors = []
    roots = [n for n in names if n not in after]
    if len(roots) != 1:
        errors.append(f"expected exactly one root anchor, got {roots}")
        return [], errors
    order = [roots[0]]
    rest = {k: v for k, v in after.items()}
    while rest:
        nxt = [k for k, v in rest.items() if v == order[-1]]
        if len(nxt) != 1:
            errors.append(
                f"anchor chain is not a simple order after "
                f"'{order[-1]}': {sorted(rest.items())}")
            return [], errors
        order.append(nxt[0])
        del rest[nxt[0]]
    return order, errors


def check_lock_order(root, header_path, doc_path, findings):
    htext = open(header_path, encoding="utf-8").read()
    declared, errors = parse_anchor_chain(htext)
    for e in errors:
        findings.append(Finding(header_path, 1, "lock-order", e))
    dtext = open(doc_path, encoding="utf-8").read()
    dm = ORDER_DECL_RE.search(dtext)
    if not dm:
        findings.append(Finding(
            doc_path, 1, "lock-order",
            "no '<!-- hicamp-lock-order: a < b < c -->' declaration"))
        return
    doc_order = [t.strip() for t in dm.group(1).split("<")]
    doc_line = line_of_offset(dtext, dm.start())
    if declared and doc_order != declared:
        findings.append(Finding(
            doc_path, doc_line, "lock-order",
            f"documented order {' < '.join(doc_order)} does not match "
            f"the ACQUIRED_AFTER chain {' < '.join(declared)} in "
            f"{header_path}"))
    # every declared rank must be co-acquired by some guard
    src = os.path.join(root, "src")
    used = set()
    for dirpath, _, files in os.walk(src):
        for f in files:
            if f.endswith((".hh", ".cc")):
                text = open(os.path.join(dirpath, f),
                            encoding="utf-8").read()
                for r in declared:
                    if re.search(rf"\block(?:rank)?::{r}\b", text):
                        used.add(r)
    for r in declared:
        if r not in used:
            findings.append(Finding(
                header_path, 1, "lock-order",
                f"rank anchor '{r}' is declared but never co-acquired "
                "by any guard under src/"))


def lint_file(root, path, findings):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    raw = open(path, encoding="utf-8").read()
    code = strip_comments_and_strings(raw)
    check_retain_balance(path, raw, code, findings)
    check_assert_side_effects(path, code, findings)
    check_relaxed_control(root, path, rel, raw, code, findings)
    check_epoch_guard(path, raw, code, findings)
    check_stat_registry(path, rel, raw, code, findings)


def default_targets(root):
    targets = []
    for sub in ("src", "tools", "examples"):
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        for dirpath, _, files in os.walk(top):
            parts = dirpath.split(os.sep)
            if "lint" in parts or "analyze" in parts:
                continue  # fixtures are violations on purpose
            for f in sorted(files):
                if f.endswith((".hh", ".cc")):
                    targets.append(os.path.join(dirpath, f))
    return targets


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="HICAMP concurrency-protocol lint")
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: src/, tools/, "
                         "examples/ under --root)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        help="repository root")
    ap.add_argument("--order-header", default=None,
                    help="thread_annotations.hh to read the anchor "
                         "chain from")
    ap.add_argument("--order-doc", default=None,
                    help="markdown file carrying the "
                         "hicamp-lock-order declaration")
    ap.add_argument("--no-lock-order", action="store_true",
                    help="skip the lock-order rule (fixture runs)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or \
        default_targets(root)
    findings = []
    for path in files:
        if not os.path.isfile(path):
            print(f"hicamp_lint: no such file: {path}",
                  file=sys.stderr)
            return 2
        lint_file(root, path, findings)

    if not args.no_lock_order:
        header = args.order_header or \
            os.path.join(root, DEFAULT_ORDER_HEADER)
        doc = args.order_doc or os.path.join(root, DEFAULT_ORDER_DOC)
        if os.path.isfile(header) and os.path.isfile(doc):
            check_lock_order(root, header, doc, findings)
        else:
            print("hicamp_lint: missing lock-order inputs "
                  f"({header}, {doc})", file=sys.stderr)
            return 2

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    print(f"hicamp_lint: {len(findings)} finding(s) in "
          f"{len(files)} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
