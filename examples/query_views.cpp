/**
 * @file
 * The paper's in-memory-database sketch (§4.4): client threads query
 * a shared table under snapshot isolation and materialize *views* —
 * new segments that reference the matching rows directly, copying
 * nothing — while an updater keeps committing. A view stays valid
 * forever: its references pin the row versions it selected.
 *
 * Build & run:  ./build/examples/example_query_views
 */

#include <cstdio>
#include <string>

#include "lang/htable.hh"

using namespace hicamp;

int
main()
{
    Hicamp hc;
    HTable orders(hc);

    // Load an orders table.
    const char *status[] = {"open", "shipped", "cancelled"};
    for (int i = 0; i < 300; ++i) {
        orders.insert(HString(
            hc, std::string("order:") + std::to_string(i) + ";status=" +
                    status[i % 3] + ";amount=" +
                    std::to_string(100 + (i * 37) % 900)));
    }
    std::printf("table loaded: %llu rows\n",
                static_cast<unsigned long long>(orders.rowCount()));

    // An analyst takes a view of all open orders.
    std::uint64_t before = hc.mem.liveBytes();
    HView open_orders = orders.select([](const HString &row) {
        return row.str().find("status=open") != std::string::npos;
    });
    std::printf("view 'open orders': %llu rows, %llu bytes of new "
                "memory (references only — rows are not copied)\n",
                static_cast<unsigned long long>(open_orders.size()),
                static_cast<unsigned long long>(hc.mem.liveBytes() -
                                                before));

    // Meanwhile operations keep mutating the table: ship everything.
    for (std::uint64_t i = 0; i < orders.rowCount(); ++i) {
        auto row = orders.get(i);
        if (!row)
            continue;
        std::string s = row->str();
        auto pos = s.find("status=open");
        if (pos != std::string::npos) {
            s.replace(pos, 11, "status=shipped");
            orders.update(i, HString(hc, s));
        }
    }
    HView now_open = orders.select([](const HString &row) {
        return row.str().find("status=open") != std::string::npos;
    });
    std::printf("after shipping everything: %llu open orders in a "
                "fresh view\n",
                static_cast<unsigned long long>(now_open.size()));

    // The analyst's original view still reads the selected versions.
    std::printf("the analyst's view still has %llu rows; row 0 = %s\n",
                static_cast<unsigned long long>(open_orders.size()),
                open_orders.row(0).str().c_str());
    std::printf("(snapshot semantics without copying or reverting "
                "database blocks — the paper's consistent-read "
                "comparison, §2.2)\n");
    return open_orders.size() == 100 && now_open.size() == 0 ? 0 : 1;
}
