/**
 * @file
 * The HICAMP *processor* (§3.3): kernels written against the model
 * ISA, where every memory access goes through an iterator register.
 * Runs a sparse-vector reduction and an atomic two-account transfer
 * written in "assembly", and reports both architectural statistics
 * and the modelled memory traffic they generated.
 *
 * Build & run:  ./build/examples/example_cpu_kernel
 */

#include <cstdio>

#include "cpu/processor.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "seg/builder.hh"

using namespace hicamp;

int
main()
{
    Hicamp hc;
    SegBuilder builder(hc.mem);

    // A sparse vector: 100 non-zeros scattered over 1M elements.
    std::vector<Word> v(1 << 20, 0);
    std::uint64_t expect = 0;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t idx = (i * 10487u + 13) % v.size();
        v[idx] = i + 1;
        expect += i + 1;
    }
    std::vector<WordMeta> m(v.size(), WordMeta::raw());
    Vsid vec = hc.vsm.create(builder.buildWords(v.data(), m.data(),
                                                v.size()));

    // Kernel 1: sum the non-zeros with ITNEXT (the sparse-skip
    // primitive — no software scan over a million zeros).
    Program sum;
    sum.emit(Op::Movi, 0, 0, 0, 0)
        .emit(Op::Movi, 2, 0, 0, 0)
        .emit(Op::ItLoad, 0, 1, 2)
        .label("loop")
        .emit(Op::ItNext, 3, 0)
        .emit(Op::Movi, 4, 0, 0, 0)
        .branch(Op::Beq, "done", 3, 4)
        .emit(Op::ItRead, 5, 0)
        .emit(Op::Add, 0, 0, 5)
        .branch(Op::Jmp, "loop")
        .label("done")
        .emit(Op::Halt);

    HicampCpu cpu(hc);
    cpu.setReg(1, vec);
    // Clean caches but keep the cumulative counters: the kernel's
    // traffic is the delta across the run.
    hc.mem.flushTraffic();
    const std::uint64_t dram0 = hc.mem.dram().total();
    cpu.run(sum);
    std::printf("sparse sum over 1M-element vector (100 non-zeros):\n");
    std::printf("  result %llu (expected %llu)\n",
                static_cast<unsigned long long>(cpu.reg(0)),
                static_cast<unsigned long long>(expect));
    std::printf("  %llu instructions, %llu iterator reads, "
                "%llu DRAM accesses\n",
                static_cast<unsigned long long>(
                    cpu.stats().instructions),
                static_cast<unsigned long long>(cpu.stats().itReads),
                static_cast<unsigned long long>(hc.mem.dram().total() -
                                                dram0));

    // Kernel 2: atomic transfer between two slots of an accounts
    // segment — buffered ITWRITEs published by one ITCOMMIT.
    Vsid accts;
    {
        std::vector<Word> a = {500, 300, 200, 0};
        std::vector<WordMeta> am(a.size(), WordMeta::raw());
        accts = hc.vsm.create(
            builder.buildWords(a.data(), am.data(), a.size()));
    }
    Program xfer;
    // r1=vsid, r2=from idx, r3=to idx, r4=amount
    xfer.emit(Op::ItLoad, 0, 1, 2)
        .emit(Op::ItRead, 5, 0)   // from balance
        .emit(Op::Sub, 5, 5, 4)
        .emit(Op::ItWrite, 0, 5)
        .emit(Op::ItSeek, 0, 3)
        .emit(Op::ItRead, 6, 0)   // to balance
        .emit(Op::Add, 6, 6, 4)
        .emit(Op::ItWrite, 0, 6)
        .emit(Op::ItCommit, 7, 0)
        .emit(Op::Halt);
    HicampCpu cpu2(hc);
    cpu2.setReg(1, accts);
    cpu2.setReg(2, 0);
    cpu2.setReg(3, 2);
    cpu2.setReg(4, 150);
    cpu2.run(xfer);

    SegReader reader(hc.mem);
    SegDesc d = hc.vsm.get(accts);
    std::printf("\natomic transfer of 150 (committed=%llu): balances "
                "now [%llu, %llu, %llu]\n",
                static_cast<unsigned long long>(cpu2.reg(7)),
                static_cast<unsigned long long>(
                    reader.readWord(d.root, d.height, 0)),
                static_cast<unsigned long long>(
                    reader.readWord(d.root, d.height, 1)),
                static_cast<unsigned long long>(
                    reader.readWord(d.root, d.height, 2)));
    obs::dumpMetricsFromEnv(obs::MetricsRegistry::globalSnapshot());
    obs::dumpChromeTraceFromEnv();
    return cpu.reg(0) == expect && cpu2.reg(7) == 1 ? 0 : 1;
}
