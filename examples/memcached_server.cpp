/**
 * @file
 * The paper's motivating application (§4.4): a memcached-style shared
 * store accessed by multiple client threads WITHOUT sockets, locks or
 * copies. Each client works directly on the shared key-value map;
 * snapshot isolation keeps readers consistent, and mCAS/merge-update
 * absorbs concurrent writers.
 *
 * Build & run:  ./build/examples/example_memcached_server
 *     [--fault-seed S] [--fault-alloc-p P] [--fault-alloc-every N]
 *     [--fault-flip-p P] [--fault-flip-every N]
 *
 * The fault flags turn on the deterministic injector: transient
 * allocation failures are absorbed by the containers' bounded retry
 * loops, DRAM bit flips are (almost always) caught by the §3.1
 * content-hash check, and whatever surfaces anyway is reported as a
 * typed MemPressureError per request rather than an abort.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/memcached/hicamp_memcached.hh"
#include "common/cli.hh"
#include "common/status.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "workloads/memcached_workload.hh"

using namespace hicamp;

int
main(int argc, char **argv)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 17;
    cli::FlagSet flags("example_memcached_server",
                       "in-process memcached driver (paper §4.4); see "
                       "example_hicamp_server for the networked one");
    cli::addFaultFlags(flags, cfg.faults);
    flags.parse(argc, argv);
    Hicamp hc(cfg);
    HicampMemcached server(hc);

    // Preload a small synthetic web corpus.
    WebCorpus::Params cp;
    cp.numItems = 2000;
    cp.minBytes = 128;
    cp.maxBytes = 4096;
    auto items = WebCorpus::generate(cp);
    for (const auto &it : items)
        server.set(it.key, it.payload);
    std::printf("preloaded %zu items, %.1f MB of content, "
                "%.1f MB resident after dedup\n",
                items.size(),
                static_cast<double>(WebCorpus::totalBytes(items)) / 1e6,
                static_cast<double>(server.residentBytes()) / 1e6);

    // Four "client processes" hammer the store concurrently. In a
    // conventional deployment each request would cross a socket; here
    // a client reads the shared segment directly under its own
    // snapshot, with hardware-enforced isolation.
    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 1500;
    // Serving phase measured as a registry delta: the preload above
    // stays in the cumulative counters, never reset.
    hc.mem.flushTraffic();
    const obs::MetricsSnapshot preload = hc.mem.metrics().snapshot();
    std::atomic<std::uint64_t> hits{0}, misses{0}, sets{0};
    std::atomic<std::uint64_t> pressureErrors{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(1000 + c);
            Zipf pop(items.size(), 0.9);
            for (int i = 0; i < kRequestsPerClient; ++i) {
                const auto idx = pop.sample(rng);
                try {
                    if (rng.chance(0.9)) {
                        if (server.get(items[idx].key))
                            ++hits;
                        else
                            ++misses;
                    } else {
                        std::string v = WebCorpus::mutate(
                            items[idx].payload, rng);
                        server.set(items[idx].key, v);
                        ++sets;
                    }
                } catch (const MemPressureError &) {
                    // Bounded retries exhausted under injection: the
                    // request fails cleanly; the store stays intact.
                    ++pressureErrors;
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();

    std::printf("%d clients x %d requests: %llu hits, %llu misses, "
                "%llu sets\n",
                kClients, kRequestsPerClient,
                static_cast<unsigned long long>(hits.load()),
                static_cast<unsigned long long>(misses.load()),
                static_cast<unsigned long long>(sets.load()));
    std::printf("conflicting commits resolved by merge-update: %llu "
                "(true conflicts: %llu)\n",
                static_cast<unsigned long long>(hc.vsm.mergeCommits()),
                static_cast<unsigned long long>(hc.vsm.mergeFailures()));
    std::printf("map entries now: %llu\n",
                static_cast<unsigned long long>(server.map().size()));
    const obs::MetricsSnapshot served =
        obs::delta(preload, hc.mem.metrics().snapshot());
    const std::uint64_t served_dram =
        served.counter("dram.read") + served.counter("dram.write") +
        served.counter("dram.lookup") + served.counter("dram.dealloc") +
        served.counter("dram.refcount");
    std::printf("serving phase: %llu DRAM accesses (%.1f per request), "
                "%llu row activations\n",
                static_cast<unsigned long long>(served_dram),
                static_cast<double>(served_dram) /
                    (kClients * kRequestsPerClient),
                static_cast<unsigned long long>(
                    served.counter("row_activations")));
    if (hc.mem.faults().config().anyEnabled()) {
        const auto &f = hc.mem.faults();
        const auto &ct = hc.mem.contention();
        std::printf(
            "fault injection: %llu alloc failures injected, %llu bit "
            "flips (%llu caught, %llu silent); %llu retries spun, "
            "%llu requests failed with a typed pressure error\n",
            static_cast<unsigned long long>(f.allocFailsInjected()),
            static_cast<unsigned long long>(f.bitFlipsInjected()),
            static_cast<unsigned long long>(hc.mem.flipsRecovered()),
            static_cast<unsigned long long>(hc.mem.flipsSilent()),
            static_cast<unsigned long long>(ct.retries.load()),
            static_cast<unsigned long long>(pressureErrors.load()));
    }
    obs::dumpMetricsFromEnv(obs::MetricsRegistry::globalSnapshot());
    obs::dumpChromeTraceFromEnv();
    return 0;
}
