/**
 * @file
 * The paper's motivating application (§4.4): a memcached-style shared
 * store accessed by multiple client threads WITHOUT sockets, locks or
 * copies. Each client works directly on the shared key-value map;
 * snapshot isolation keeps readers consistent, and mCAS/merge-update
 * absorbs concurrent writers.
 *
 * Build & run:  ./build/examples/example_memcached_server
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/memcached/hicamp_memcached.hh"
#include "workloads/memcached_workload.hh"

using namespace hicamp;

int
main()
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 17;
    Hicamp hc(cfg);
    HicampMemcached server(hc);

    // Preload a small synthetic web corpus.
    WebCorpus::Params cp;
    cp.numItems = 2000;
    cp.minBytes = 128;
    cp.maxBytes = 4096;
    auto items = WebCorpus::generate(cp);
    for (const auto &it : items)
        server.set(it.key, it.payload);
    std::printf("preloaded %zu items, %.1f MB of content, "
                "%.1f MB resident after dedup\n",
                items.size(),
                static_cast<double>(WebCorpus::totalBytes(items)) / 1e6,
                static_cast<double>(server.residentBytes()) / 1e6);

    // Four "client processes" hammer the store concurrently. In a
    // conventional deployment each request would cross a socket; here
    // a client reads the shared segment directly under its own
    // snapshot, with hardware-enforced isolation.
    constexpr int kClients = 4;
    constexpr int kRequestsPerClient = 1500;
    std::atomic<std::uint64_t> hits{0}, misses{0}, sets{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(1000 + c);
            Zipf pop(items.size(), 0.9);
            for (int i = 0; i < kRequestsPerClient; ++i) {
                const auto idx = pop.sample(rng);
                if (rng.chance(0.9)) {
                    if (server.get(items[idx].key))
                        ++hits;
                    else
                        ++misses;
                } else {
                    std::string v = WebCorpus::mutate(
                        items[idx].payload, rng);
                    server.set(items[idx].key, v);
                    ++sets;
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();

    std::printf("%d clients x %d requests: %llu hits, %llu misses, "
                "%llu sets\n",
                kClients, kRequestsPerClient,
                static_cast<unsigned long long>(hits.load()),
                static_cast<unsigned long long>(misses.load()),
                static_cast<unsigned long long>(sets.load()));
    std::printf("conflicting commits resolved by merge-update: %llu "
                "(true conflicts: %llu)\n",
                static_cast<unsigned long long>(hc.vsm.mergeCommits()),
                static_cast<unsigned long long>(hc.vsm.mergeFailures()));
    std::printf("map entries now: %llu\n",
                static_cast<unsigned long long>(server.map().size()));
    return 0;
}
