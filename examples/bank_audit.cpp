/**
 * @file
 * The paper's §2.2 database example: a long-running, read-only audit
 * sums every account balance at one point in time while customer
 * transactions keep committing. On HICAMP this "consistent read"
 * costs nothing: the auditor saves the root PLID and iterates over an
 * immutable snapshot — no block copying, no serialization, no stalls.
 *
 * Build & run:  ./build/examples/example_bank_audit
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "lang/context.hh"
#include "seg/iterator.hh"

using namespace hicamp;

int
main()
{
    Hicamp hc;
    constexpr std::uint64_t kAccounts = 20000;
    constexpr std::uint64_t kOpening = 1000;

    // The bank: one segment of balances, merge-update enabled so
    // concurrent transfers to disjoint accounts never retry.
    std::vector<Word> init(kAccounts, kOpening);
    std::vector<WordMeta> metas(init.size(), WordMeta::raw());
    SegBuilder builder(hc.mem, /*model_staging=*/true);
    Vsid bank = hc.vsm.create(
        builder.buildWords(init.data(), metas.data(), init.size()),
        kSegMergeUpdate);

    const std::uint64_t expected_total = kAccounts * kOpening;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> transfers{0};

    // Customer traffic: random balance-preserving transfers.
    std::thread teller([&] {
        Rng rng(7);
        IteratorRegister it(hc.mem, hc.vsm);
        while (!stop.load(std::memory_order_relaxed)) {
            std::uint64_t from = rng.below(kAccounts);
            std::uint64_t to = rng.below(kAccounts);
            std::uint64_t amount = 1 + rng.below(50);
            it.load(bank, from);
            std::uint64_t bal = it.read();
            if (bal < amount || from == to)
                continue;
            it.write(bal - amount);
            it.seek(to);
            it.write(it.read() + amount);
            if (it.tryCommit())
                ++transfers;
        }
    });

    // The auditor: a long-running read-only pass over a snapshot.
    // Loading the iterator register pins the root PLID; everything it
    // reads is the state at exactly that instant.
    std::uint64_t audits_ok = 0;
    for (int round = 0; round < 5; ++round) {
        IteratorRegister auditor(hc.mem, hc.vsm);
        auditor.load(bank, 0);
        std::uint64_t total = 0;
        for (std::uint64_t i = 0; i < kAccounts; ++i) {
            auditor.seek(i);
            total += auditor.read();
        }
        bool consistent = total == expected_total;
        audits_ok += consistent ? 1 : 0;
        std::printf("audit %d: total=%llu (%s) — %llu transfers "
                    "committed so far\n",
                    round,
                    static_cast<unsigned long long>(total),
                    consistent ? "consistent" : "TORN!",
                    static_cast<unsigned long long>(transfers.load()));
    }
    stop = true;
    teller.join();

    std::printf("\n%llu/5 audits saw a perfectly consistent snapshot "
                "while %llu concurrent transfers committed.\n",
                static_cast<unsigned long long>(audits_ok),
                static_cast<unsigned long long>(transfers.load()));
    std::printf("No locks were taken; updates were never stalled "
                "(snapshot isolation, paper §2.2).\n");
    return audits_ok == 5 ? 0 : 1;
}
