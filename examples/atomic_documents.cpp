/**
 * @file
 * Multi-segment atomic update (paper §2.3): when the segment map is
 * itself a HICAMP segment, several objects can be revised and
 * published with ONE commit — concurrent readers see either all the
 * new versions or none. This example keeps a small "web site" (three
 * documents) and republishes all pages atomically while readers keep
 * rendering consistent versions.
 *
 * Build & run:  ./build/examples/example_atomic_documents
 */

#include <cstdio>
#include <string>

#include "lang/atomic_heap.hh"

using namespace hicamp;

namespace {

constexpr std::uint64_t kHome = 0, kNews = 1, kAbout = 2;

void
publish(AtomicHeap &site, Hicamp &hc, int version)
{
    AtomicHeap::Tx tx(site);
    std::string v = "v" + std::to_string(version);
    tx.write(kHome, HString(hc, "<html>home " + v + " — see /news"));
    tx.write(kNews, HString(hc, "<html>news " + v + " — updated with "
                                    "home"));
    tx.write(kAbout, HString(hc, "<html>about " + v));
    bool ok = tx.commit();
    std::printf("publish %s: %s\n", v.c_str(),
                ok ? "committed atomically" : "conflict");
}

/** A reader renders the site from one snapshot. */
bool
renderConsistent(AtomicHeap &site)
{
    AtomicHeap::Tx view(site); // read-only use of a transaction
    std::string home = view.read(kHome).str();
    std::string news = view.read(kNews).str();
    std::string about = view.read(kAbout).str();
    // All three documents must carry the same version stamp.
    auto stamp = [](const std::string &s) {
        auto p = s.find(" v");
        return s.substr(p + 1, s.find(' ', p + 1) - p - 1);
    };
    bool consistent = stamp(home) == stamp(news) &&
                      stamp(news) == stamp(about);
    std::printf("  reader rendered %s / %s / %s -> %s\n",
                stamp(home).c_str(), stamp(news).c_str(),
                stamp(about).c_str(),
                consistent ? "consistent" : "MIXED VERSIONS");
    return consistent;
}

} // namespace

int
main()
{
    Hicamp hc;
    AtomicHeap site(hc);

    publish(site, hc, 1);
    AtomicHeap::Tx old_reader(site); // long-lived snapshot at v1

    bool all_ok = true;
    for (int v = 2; v <= 4; ++v) {
        publish(site, hc, v);
        all_ok = renderConsistent(site) && all_ok;
    }

    // The v1 reader still sees its complete original site.
    std::printf("long-lived reader still sees: %s\n",
                old_reader.read(kHome).str().c_str());

    // Identical pages across versions share lines automatically:
    std::printf("live memory: %.1f KB for 4 versions x 3 documents\n",
                static_cast<double>(hc.mem.liveBytes()) / 1024.0);
    return all_ok ? 0 : 1;
}
