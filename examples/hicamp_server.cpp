/**
 * @file
 * The networked memcached server (DESIGN.md §14): binds a TCP port,
 * serves the memcached text protocol from the HICAMP heap, and keeps
 * serving until SIGINT/SIGTERM, then drains, audits the heap, and
 * reports its metrics.
 *
 * Build & run:  ./build/examples/example_hicamp_server --port 11311
 * Then talk to it with any memcached client or plain netcat:
 *
 *     printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11311
 *
 * Under fault injection (--fault-alloc-p etc.) allocation failures
 * surface as per-request "SERVER_ERROR out of memory" responses; the
 * exit audit still verifies a leak-free heap.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>

#include "analysis/auditor.hh"
#include "common/cli.hh"
#include "obs/export.hh"
#include "server/server.hh"
#include "workloads/webcorpus.hh"

using namespace hicamp;

namespace {

// Signal handlers may only touch lock-free state; the main loop polls
// this standalone word (all-relaxed FLAG use: no dependent data, the
// ordering the shutdown needs comes from McServer::stop's joins).
HICAMP_ATOMIC_FLAG std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    MemoryConfig mcfg;
    mcfg.numBuckets = 1 << 17;
    server::ServerConfig scfg;
    scfg.port = 11311;
    std::uint64_t preloadItems = 0;
    unsigned shardBits = 4;

    cli::FlagSet flags("example_hicamp_server",
                       "networked memcached-protocol server on the "
                       "HICAMP heap (DESIGN.md §14)");
    flags.str("--host", &scfg.host, "listen address");
    unsigned port = scfg.port;
    flags.u32("--port", &port, "listen port (0 = ephemeral)");
    flags.u32("--workers", &scfg.workers, "worker thread count");
    flags.u32("--shard-bits", &shardBits,
              "log2 store shards (0..8)");
    flags.u64("--preload", &preloadItems,
              "preload this many synthetic web items");
    cli::addFaultFlags(flags, mcfg.faults);
    flags.parse(argc, argv);
    if (port > 0xffff) {
        std::fprintf(stderr, "--port out of range\n");
        return 2;
    }
    if (shardBits > 8) {
        std::fprintf(stderr, "--shard-bits out of range (0..8)\n");
        return 2;
    }
    scfg.port = static_cast<std::uint16_t>(port);

    Hicamp hc(mcfg);
    server::McStore store(hc, shardBits);

    if (preloadItems > 0) {
        WebCorpus::Params cp;
        cp.numItems = preloadItems;
        cp.minBytes = 128;
        cp.maxBytes = 4096;
        auto items = WebCorpus::generate(cp);
        for (const auto &it : items)
            store.set(it.key, 0, it.payload);
        std::printf("preloaded %zu items (%llu resident in store)\n",
                    items.size(),
                    static_cast<unsigned long long>(store.itemCount()));
    }

    server::McServer srv(store, scfg);
    srv.start();
    std::printf("serving on %s:%u with %u workers (ctrl-c to stop)\n",
                scfg.host.c_str(), srv.port(), scfg.workers);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    srv.stop();
    const auto snap = srv.metrics().snapshot();
    std::printf("served: %llu gets (%llu hits), %llu sets, %llu "
                "deletes, %llu oom errors, %llu conns\n",
                static_cast<unsigned long long>(
                    snap.counter("server.cmds.get")),
                static_cast<unsigned long long>(
                    snap.counter("server.get.hits")),
                static_cast<unsigned long long>(
                    snap.counter("server.cmds.set")),
                static_cast<unsigned long long>(
                    snap.counter("server.cmds.delete")),
                static_cast<unsigned long long>(
                    snap.counter("server.oom_errors")),
                static_cast<unsigned long long>(
                    snap.counter("server.conns.accepted")));

    const AuditReport report = Auditor::audit(hc);
    std::printf("exit heap audit: %s\n", report.summary().c_str());
    obs::dumpMetricsFromEnv(obs::MetricsRegistry::globalSnapshot());
    return report.clean() ? 0 : 1;
}
