/**
 * @file
 * Sparse-matrix computation on HICAMP (paper §5.2): build a FEM
 * stiffness matrix in the quad-tree-symmetric format and solve the
 * Poisson problem with conjugate gradients — every SpMV goes through
 * the simulated memory system. Reports footprint and traffic against
 * the conventional CSR baseline.
 *
 * Build & run:  ./build/examples/example_spmv_solver
 *     [--fault-seed S] [--fault-flip-p P] [--fault-flip-every N]
 *
 * The flip flags corrupt DRAM line fetches through the deterministic
 * injector; the §3.1 content-hash-vs-bucket check catches nearly all
 * of them, and the solve still converges to the right answer.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/spmv/hicamp_matrix.hh"
#include "common/cli.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "workloads/matrixgen.hh"

using namespace hicamp;

int
main(int argc, char **argv)
{
    const std::uint32_t grid = 96; // 9216 unknowns
    SparseMatrix A = MatrixGen::fem2d(grid, MatrixGen::Coef::Constant,
                                      /*symmetric=*/true, 1,
                                      "poisson2d");
    std::printf("2D Poisson, %u x %u grid: %u unknowns, %llu non-zeros\n",
                grid, grid, A.rows(),
                static_cast<unsigned long long>(A.nnz()));

    MemoryConfig cfg;
    cfg.numBuckets = 1 << 16;
    cli::FlagSet flags("example_spmv_solver",
                       "CG Poisson solve through the HICAMP memory "
                       "model (paper §5.2)");
    cli::addFaultFlags(flags, cfg.faults);
    flags.parse(argc, argv);
    Memory mem(cfg);
    QtsMatrix Ah(mem, A);

    std::printf("storage: CSR %.1f KB vs HICAMP QTS %.1f KB "
                "(constant-coefficient stencil deduplicates)\n",
                static_cast<double>(A.convBytes()) / 1024.0,
                static_cast<double>(Ah.footprintBytes()) / 1024.0);

    // Conjugate gradients on A x = b, with b = A * ones so the exact
    // solution is the all-ones vector.
    const std::uint32_t n = A.rows();
    std::vector<double> ones(n, 1.0);
    std::vector<double> b = A.multiply(ones);
    std::vector<double> x(n, 0.0), r = b, p = b;
    double rr = 0.0;
    for (double v : r)
        rr += v * v;
    const double rr0 = rr;

    // Under flip injection start cold: the constant-stencil matrix is
    // small enough to live entirely in cache, and flips only strike
    // actual DRAM fetches.
    if (mem.faults().config().anyEnabled())
        mem.coldCaches();
    else
        mem.flushTraffic();
    const std::uint64_t dram0 = mem.dram().total();
    int iters = 0;
    for (; iters < 2000 && rr > 1e-20 * rr0; ++iters) {
        std::vector<double> Ap = Ah.spmv(p); // through the memory model
        double pAp = 0.0;
        for (std::uint32_t i = 0; i < n; ++i)
            pAp += p[i] * Ap[i];
        double alpha = rr / pAp;
        double rr_new = 0.0;
        for (std::uint32_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * Ap[i];
            rr_new += r[i] * r[i];
        }
        double beta = rr_new / rr;
        rr = rr_new;
        for (std::uint32_t i = 0; i < n; ++i)
            p[i] = r[i] + beta * p[i];
    }

    double err = 0.0;
    for (std::uint32_t i = 0; i < n; ++i)
        err = std::max(err, std::abs(x[i] - 1.0));
    std::printf("CG converged in %d iterations, |r|/|r0| = %.2e, "
                "max error vs exact solution %.2e\n",
                iters, std::sqrt(rr / rr0), err);
    std::printf("memory traffic for the whole solve: %llu DRAM "
                "accesses through the HICAMP hierarchy\n",
                static_cast<unsigned long long>(mem.dram().total() -
                                                dram0));
    std::printf("(zero sub-blocks were skipped by entry inspection; "
                "repeated stencil blocks hit in cache — the paper's "
                "'duplicate sub-matrix detection')\n");
    if (mem.faults().config().anyEnabled()) {
        std::printf(
            "fault injection: %llu DRAM bit flips injected, %llu "
            "caught by the content-hash check, %llu silent\n",
            static_cast<unsigned long long>(
                mem.faults().bitFlipsInjected()),
            static_cast<unsigned long long>(mem.flipsRecovered()),
            static_cast<unsigned long long>(mem.flipsSilent()));
    }
    obs::dumpMetricsFromEnv(obs::MetricsRegistry::globalSnapshot());
    obs::dumpChromeTraceFromEnv();
    return err < 1e-6 ? 0 : 1;
}
