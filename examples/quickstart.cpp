/**
 * @file
 * Quickstart: the HICAMP memory model in five minutes.
 *
 *  - content-unique lines and segments (equal content => equal PLIDs)
 *  - O(1) whole-string comparison
 *  - snapshot isolation: readers keep a stable view for free
 *  - atomic update by CAS on the segment root
 *  - iterator registers: sparse iteration and buffered writes
 *
 * Build & run:  ./build/examples/example_quickstart
 */

#include <cstdio>
#include <string>

#include "lang/hmap.hh"
#include "lang/hstring.hh"
#include "seg/iterator.hh"

using namespace hicamp;

int
main()
{
    Hicamp hc; // a machine: deduplicating memory + segment map

    // --- content uniqueness -----------------------------------------
    HString a(hc, "This is a long string containing another string");
    HString b(hc, "This is a long string containing another string");
    std::printf("two identical strings built independently:\n");
    std::printf("  equal (one descriptor compare): %s\n",
                a == b ? "yes" : "no");
    std::printf("  live lines in memory: %llu (stored once)\n",
                static_cast<unsigned long long>(hc.mem.liveLines()));

    // --- snapshot isolation + atomic update ---------------------------
    std::vector<Word> balances = {100, 250, 75, 420};
    std::vector<WordMeta> metas(balances.size(), WordMeta::raw());
    SegBuilder builder(hc.mem);
    Vsid accounts = hc.vsm.create(
        builder.buildWords(balances.data(), metas.data(),
                           balances.size()));

    // A reader snapshots the segment...
    SegDesc snap = hc.vsm.snapshot(accounts);

    // ...while a writer commits an update via an iterator register.
    IteratorRegister writer(hc.mem, hc.vsm);
    writer.load(accounts, 1);
    writer.write(writer.read() - 50); // withdraw 50 from account 1
    writer.seek(2);
    writer.write(writer.read() + 50); // deposit into account 2
    bool committed = writer.tryCommit(); // atomic: both or neither
    std::printf("\ntransfer committed atomically: %s\n",
                committed ? "yes" : "no");

    SegReader reader(hc.mem);
    std::printf("reader's snapshot still sees account1=%llu "
                "account2=%llu (isolation)\n",
                static_cast<unsigned long long>(
                    reader.readWord(snap.root, snap.height, 1)),
                static_cast<unsigned long long>(
                    reader.readWord(snap.root, snap.height, 2)));
    SegDesc now = hc.vsm.get(accounts);
    std::printf("fresh read sees        account1=%llu account2=%llu\n",
                static_cast<unsigned long long>(
                    reader.readWord(now.root, now.height, 1)),
                static_cast<unsigned long long>(
                    reader.readWord(now.root, now.height, 2)));
    hc.vsm.releaseSnapshot(snap);

    // --- sparse arrays + iterator next() ------------------------------
    IteratorRegister sparse(hc.mem, hc.vsm);
    Vsid arr = hc.vsm.create(SegDesc{});
    sparse.load(arr, 5);
    sparse.write(55);
    sparse.seek(100000); // grows without reallocation or copy
    sparse.write(77);
    sparse.tryCommit();
    sparse.load(arr, 0);
    std::printf("\nsparse array non-zero elements:");
    if (sparse.nextFrom()) {
        do {
            std::printf(" [%llu]=%llu",
                        static_cast<unsigned long long>(sparse.offset()),
                        static_cast<unsigned long long>(sparse.read()));
        } while (sparse.next());
    }
    std::printf("\n");

    // --- a key-value map ----------------------------------------------
    HMap map(hc);
    map.set(HString(hc, "greeting"), HString(hc, "hello hicamp"));
    auto v = map.get(HString(hc, "greeting"));
    std::printf("\nmap[\"greeting\"] = \"%s\"\n",
                v ? v->str().c_str() : "(missing)");

    std::printf("\nDRAM traffic so far: %llu accesses "
                "(%llu lookups, %llu reads, %llu refcount)\n",
                static_cast<unsigned long long>(hc.mem.dram().total()),
                static_cast<unsigned long long>(hc.mem.dram().lookups()),
                static_cast<unsigned long long>(hc.mem.dram().reads()),
                static_cast<unsigned long long>(
                    hc.mem.dram().refcounts()));
    return 0;
}
