/**
 * @file
 * dag-inspect: a small utility a downstream user of the library would
 * actually want — load one or more files into HICAMP segments and
 * report the memory-structure statistics the architecture is about:
 * line counts, dedup factor, compaction entry kinds along the DAG,
 * depth, and sharing across the inputs.
 *
 * Usage:  ./build/examples/example_dag_inspect [file ...]
 * Without arguments it inspects a built-in demonstration corpus.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"
#include "workloads/webcorpus.hh"

using namespace hicamp;

namespace {

struct DagStats {
    std::uint64_t plidEntries = 0;
    std::uint64_t inlineEntries = 0;
    std::uint64_t pathCompacted = 0;
    std::uint64_t zeroEntries = 0;
    int maxDepth = 0;
};

void
walk(Memory &mem, const Entry &e, int h, int depth, DagStats &st)
{
    st.maxDepth = std::max(st.maxDepth, depth);
    if (e.isZero()) {
        ++st.zeroEntries;
        return;
    }
    if (e.meta.isInline()) {
        ++st.inlineEntries;
        return;
    }
    if (e.meta.skip() > 0)
        ++st.pathCompacted;
    ++st.plidEntries;
    int ph = h - static_cast<int>(e.meta.skip());
    if (ph <= 0)
        return;
    Line line = mem.store().read(e.plid());
    for (unsigned i = 0; i < mem.fanout(); ++i)
        walk(mem, {line.word(i), line.meta(i)}, ph - 1, depth + 1, st);
}

} // namespace

int
main(int argc, char **argv)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 18;
    Memory mem(cfg);
    SegBuilder builder(mem);
    SegReader reader(mem);

    std::vector<std::pair<std::string, std::string>> inputs;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i) {
            std::ifstream f(argv[i], std::ios::binary);
            if (!f) {
                std::fprintf(stderr, "cannot open %s\n", argv[i]);
                return 1;
            }
            std::ostringstream ss;
            ss << f.rdbuf();
            inputs.emplace_back(argv[i], ss.str());
        }
    } else {
        WebCorpus::Params p;
        p.numItems = 20;
        p.minBytes = 2048;
        p.maxBytes = 32768;
        auto items = WebCorpus::generate(p);
        for (auto &it : items)
            inputs.emplace_back(it.key, it.payload);
        std::printf("(no files given: inspecting a 20-page synthetic "
                    "demo corpus)\n\n");
    }

    Table t({"input", "bytes", "lines", "depth", "plid", "inline",
             "path-compacted", "marginal KB"});
    std::unordered_set<Plid> seen;
    std::vector<SegDesc> keep;
    std::uint64_t total_bytes = 0;
    for (const auto &[name, data] : inputs) {
        std::uint64_t before = mem.liveBytes();
        SegDesc d = builder.buildBytes(data.data(), data.size());
        keep.push_back(d);
        total_bytes += data.size();

        DagStats st;
        walk(mem, d.root, d.height, 0, st);
        std::uint64_t lines = 0;
        {
            std::unordered_set<Plid> own;
            lines = reader.countLines(d.root, d.height, own);
        }
        reader.countLines(d.root, d.height, seen);
        t.addRow({name.size() > 28 ? name.substr(name.size() - 28) : name,
                  strfmt("%zu", data.size()),
                  strfmt("%llu", (unsigned long long)lines),
                  strfmt("%d", st.maxDepth),
                  strfmt("%llu", (unsigned long long)st.plidEntries),
                  strfmt("%llu", (unsigned long long)st.inlineEntries),
                  strfmt("%llu", (unsigned long long)st.pathCompacted),
                  strfmt("%.1f", static_cast<double>(mem.liveBytes() -
                                                     before) /
                                     1024.0)});
    }
    t.print();

    std::printf("\ntotals: %.1f KB input, %.1f KB in HICAMP "
                "(%llu unique lines) -> compaction %.2fx\n",
                static_cast<double>(total_bytes) / 1024.0,
                static_cast<double>(mem.liveBytes()) / 1024.0,
                static_cast<unsigned long long>(seen.size()),
                static_cast<double>(total_bytes) /
                    static_cast<double>(mem.liveBytes()));
    std::printf("identical content across inputs is stored once; "
                "'marginal KB' shows each input's true cost.\n");
    for (const auto &d : keep)
        builder.releaseSeg(d);
    return 0;
}
